"""Metrics-registry tests: counter/gauge/histogram semantics, the
zero-overhead null default, scoped installation, JSON and Prometheus
exports, the invariant snapshot, and the shared CacheStats schema."""

import json
import threading

import pytest

from repro.obs import metrics as m
from repro.obs.export import (
    metrics_from_json, metrics_to_json, prometheus_text,
)
from repro.obs.metrics import (
    CacheStats, MetricsRegistry, NULL_REGISTRY, format_labels,
    label_key, registry_from_dict, use_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc(kind="a")
        c.inc(3, kind="b")
        assert c.value(kind="a") == 1.0
        assert c.value(kind="b") == 3.0
        assert c.value(kind="c") is None

    def test_negative_inc_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("x_total").inc(-1)

    def test_label_order_canonical(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(b="2", a="1") == 2.0
        assert len(c.samples()) == 1


class TestGauge:
    def test_set_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("temp")
        g.set(1.0)
        g.set(-7.5)
        assert g.value() == -7.5

    def test_inc_allows_negative(self):
        reg = MetricsRegistry()
        g = reg.gauge("delta")
        g.inc(2)
        g.inc(-5)
        assert g.value() == -3.0


class TestHistogram:
    def test_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        state = h.value()
        assert state["counts"] == [1, 2, 1]  # <=0.1, <=1.0, +Inf
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(6.05)

    def test_boundary_is_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(1.0)
        assert h.value()["counts"] == [1, 0]

    def test_bad_buckets_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("h2", buckets=())

    def test_reregister_same_buckets_ok_mismatch_raises(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("h", buckets=(1.0, 2.0))
        assert reg.histogram("h", buckets=(1.0, 2.0)) is h1
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("h", buckets=(1.0, 3.0))


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("c", help="first")
        b = reg.counter("c", help="ignored")
        assert a is b
        assert a.help == "first"

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_metrics_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.gauge("aa")
        assert [x.name for x in reg.metrics()] == ["aa", "zz"]

    def test_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000.0


class TestNullRegistry:
    def test_disabled_and_noop(self):
        assert NULL_REGISTRY.enabled is False
        h = NULL_REGISTRY.histogram("x")
        h.observe(1.0, a="b")
        NULL_REGISTRY.counter("y").inc(5)
        NULL_REGISTRY.gauge("z").set(2)
        assert NULL_REGISTRY.metrics() == []
        assert NULL_REGISTRY.to_dict()["metrics"] == []
        assert NULL_REGISTRY.invariant_snapshot() == {}

    def test_shared_handle(self):
        # all registrations return one shared object: no allocation in
        # instrumented hot paths when metrics are off
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")

    def test_default_active(self):
        assert m.get_registry() is NULL_REGISTRY


class TestUseRegistry:
    def test_installs_and_restores(self):
        before = m.get_registry()
        with use_registry() as reg:
            assert m.get_registry() is reg
            assert reg.enabled
        assert m.get_registry() is before

    def test_restores_on_exception(self):
        before = m.get_registry()
        with pytest.raises(RuntimeError):
            with use_registry():
                raise RuntimeError("boom")
        assert m.get_registry() is before

    def test_explicit_registry(self):
        mine = MetricsRegistry()
        with use_registry(mine) as reg:
            assert reg is mine

    def test_set_registry_none_restores_null(self):
        prev = m.set_registry(MetricsRegistry())
        try:
            m.set_registry(None)
            assert m.get_registry() is NULL_REGISTRY
        finally:
            m.set_registry(prev)


class TestContextScoping:
    """Regression suite for the module-global ``_ACTIVE`` bug: one
    task/thread's ``use_registry()`` used to swap the registry for every
    other in-flight task, cross-publishing concurrent requests'
    series."""

    def test_two_task_divergence(self):
        """Two interleaved asyncio tasks each keep their own registry.

        Pre-fix this failed: task B's install leaked into task A across
        the ``await``, so A's second increment landed in B's registry.
        """
        import asyncio

        async def request(name: str, release: asyncio.Event,
                          ready: asyncio.Event) -> MetricsRegistry:
            with use_registry() as reg:
                m.get_registry().counter("req_ops").inc(task=name)
                ready.set()
                await release.wait()  # the other task installs here
                m.get_registry().counter("req_ops").inc(task=name)
            return reg

        async def scenario():
            release_a = asyncio.Event()
            ready_a = asyncio.Event()
            release_b = asyncio.Event()
            ready_b = asyncio.Event()
            task_a = asyncio.ensure_future(
                request("a", release_a, ready_a))
            await ready_a.wait()
            task_b = asyncio.ensure_future(
                request("b", release_b, ready_b))
            await ready_b.wait()
            release_a.set()
            release_b.set()
            return await asyncio.gather(task_a, task_b)

        reg_a, reg_b = asyncio.run(scenario())
        assert reg_a is not reg_b
        ops_a = reg_a.get("req_ops")
        ops_b = reg_b.get("req_ops")
        assert ops_a.value(task="a") == 2.0
        assert ops_a.value(task="b") is None, \
            "task b's series leaked into task a's registry"
        assert ops_b.value(task="b") == 2.0
        assert ops_b.value(task="a") is None, \
            "task a's series leaked into task b's registry"

    def test_two_thread_divergence(self):
        """Worker-pool threads with their own scopes never cross-talk."""
        import threading

        barrier = threading.Barrier(2, timeout=10.0)
        regs: dict[str, MetricsRegistry] = {}

        def request(name: str) -> None:
            with use_registry() as reg:
                regs[name] = reg
                barrier.wait()  # both scopes now active concurrently
                m.get_registry().counter("req_ops").inc(task=name)
                barrier.wait()

        threads = [threading.Thread(target=request, args=(n,))
                   for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert regs["a"].get("req_ops").value(task="a") == 1.0
        assert regs["a"].get("req_ops").value(task="b") is None
        assert regs["b"].get("req_ops").value(task="b") == 1.0
        assert regs["b"].get("req_ops").value(task="a") is None

    def test_fresh_thread_sees_process_default(self):
        """A scope in one thread is invisible to a new thread, which
        falls back to the process default (the CLI contract)."""
        import threading

        seen = {}

        def probe():
            seen["registry"] = m.get_registry()

        with use_registry():
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["registry"] is NULL_REGISTRY

    def test_set_process_default(self):
        mine = MetricsRegistry()
        prev = m.set_process_default(mine)
        try:
            assert m.get_registry() is mine
            with use_registry() as reg:
                assert m.get_registry() is reg
            assert m.get_registry() is mine
        finally:
            m.set_process_default(prev)
        assert m.get_registry() is NULL_REGISTRY

    def test_cache_stats_publish_context_local(self):
        """CacheStats.record publishes into the context-local registry,
        not a process global."""
        stats = CacheStats(label="plan-memory")
        with use_registry() as reg:
            stats.record("hit")
        events = reg.get("repro_cache_events_total")
        assert events.value(cache="plan-memory", event="hit") == 1.0


class TestJsonExport:
    def build(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", help="a counter", invariant=True)
        c.inc(2, kind="x")
        g = reg.gauge("g", deterministic=False)
        g.set(1.5, pe="0")
        h = reg.histogram("h_seconds", buckets=(0.1, 1.0),
                          deterministic=False)
        h.observe(0.05, phase="parse")
        h.observe(2.0, phase="parse")
        return reg

    def test_round_trip_exact(self):
        reg = self.build()
        doc = reg.to_dict()
        assert doc["type"] == "metrics" and doc["version"] == 1
        revived = registry_from_dict(doc)
        assert revived.to_dict() == doc
        # through the JSON text layer too
        text = metrics_to_json(reg)
        assert metrics_to_json(metrics_from_json(text)) == text
        assert json.loads(text) == doc

    def test_flags_survive(self):
        revived = registry_from_dict(self.build().to_dict())
        assert revived.get("c_total").invariant
        assert not revived.get("g").deterministic
        assert revived.get("h_seconds").buckets == (0.1, 1.0)

    def test_rejects_wrong_type_and_version(self):
        with pytest.raises(ValueError, match="not a metrics"):
            registry_from_dict({"type": "run", "version": 1})
        with pytest.raises(ValueError, match="unsupported"):
            registry_from_dict({"type": "metrics", "version": 99})


class TestPrometheusText:
    def test_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", help="help text").inc(3, kind="x")
        reg.gauge("wall", deterministic=False).set(1.5)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = prometheus_text(reg)
        assert "# HELP c_total help text\n" in text
        assert "# TYPE c_total counter\n" in text
        assert 'c_total{kind="x"} 3\n' in text
        assert "# repro-nondeterministic wall\n" in text
        # histogram buckets are cumulative and +Inf-terminated
        assert 'lat_seconds_bucket{le="0.1"} 1\n' in text
        assert 'lat_seconds_bucket{le="1"} 2\n' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2\n' in text
        assert "lat_seconds_sum 0.55\n" in text
        assert "lat_seconds_count 2\n" in text
        assert text.endswith("\n")

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(path='a"b\\c\nd')
        text = prometheus_text(reg)
        assert 'c{path="a\\"b\\\\c\\nd"} 1\n' in text


class TestInvariantSnapshot:
    def test_only_invariant_series(self):
        reg = MetricsRegistry()
        reg.counter("inv_total", invariant=True).inc(5, event="x")
        reg.counter("var_total").inc(1)
        reg.gauge("wall", deterministic=False).set(0.1)
        snap = reg.invariant_snapshot()
        assert set(snap) == {"inv_total"}
        assert snap["inv_total"] == {'{event="x"}': 5.0}

    def test_bitwise_comparable(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.counter("n", invariant=True).inc(0.1 + 0.2)
        assert a.invariant_snapshot() == b.invariant_snapshot()
        b.counter("n").inc(1e-12)  # far below any rtol, still bitwise-visible
        assert a.invariant_snapshot() != b.invariant_snapshot()


class TestLabelHelpers:
    def test_label_key_sorted_strs(self):
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_format_labels(self):
        assert format_labels(()) == ""
        assert format_labels((("a", "x"),)) == '{a="x"}'


class TestCacheStats:
    def test_record_updates_fields(self):
        stats = CacheStats(label="t")
        stats.record("hit")
        stats.record("miss", 3)
        stats.record("eviction", 0)  # no-op
        assert stats.hits == 1 and stats.misses == 3
        assert stats.evictions == 0
        assert stats.hit_rate == 0.25

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            CacheStats().record("explosion")

    def test_snapshot_schema_shared(self):
        snap = CacheStats(label="plan-memory").snapshot()
        assert snap["cache"] == "plan-memory"
        assert set(snap) == {"cache", "hits", "misses", "invalidations",
                             "evictions", "pruned", "tmp_swept",
                             "hit_rate"}
        assert CacheStats().snapshot()["cache"] == "unlabeled"

    def test_publishes_to_active_registry(self):
        stats = CacheStats(label="k")
        with use_registry() as reg:
            stats.record("hit", 2)
            stats.record("miss")
        c = reg.get("repro_cache_events_total")
        assert c.value(cache="k", event="hit") == 2.0
        assert c.value(cache="k", event="miss") == 1.0
        # outside the scope: counts locally, publishes nowhere
        stats.record("hit")
        assert stats.hits == 3
        assert c.value(cache="k", event="hit") == 2.0

    def test_all_cache_layers_share_schema(self):
        from repro.codegen.cache import MEMORY_STATS, KernelDiskCache
        from repro.compiler.cache import PersistentPlanCache, PlanCache
        import tempfile
        with tempfile.TemporaryDirectory() as d:
            layers = [PlanCache().stats,
                      PersistentPlanCache(d).stats,
                      MEMORY_STATS,
                      KernelDiskCache(d).stats]
        keysets = {tuple(sorted(s.snapshot())) for s in layers}
        assert len(keysets) == 1
        assert {s.snapshot()["cache"] for s in layers} == {
            "plan-memory", "plan-disk", "kernel-memory", "kernel-disk"}
