"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.machine import Machine

try:
    from hypothesis import settings as _hyp_settings

    # Deterministic profile for CI: no wall-clock deadlines (shared
    # runners are slow and jittery) and derandomized example generation
    # so the differential fuzz tests replay identically on every run.
    # Selected via HYPOTHESIS_PROFILE=ci (see .github/workflows/ci.yml).
    _hyp_settings.register_profile("ci", deadline=None, derandomize=True)
    if os.environ.get("HYPOTHESIS_PROFILE") == "ci":
        _hyp_settings.load_profile("ci")
except ImportError:  # pragma: no cover - hypothesis is a test dep
    pass


@pytest.fixture(autouse=True)
def no_shm_leaks(request):
    """Fail any ``parallel``-marked test that leaks shared memory.

    The parallel backend names every segment ``repro-{run}-...``; a
    test that ends with more such segments than it started with left a
    run's shared memory behind (a missed ``close()`` on some error
    path).  Snapshotting before/after every marked test replaces the
    ad-hoc per-test glob checks and covers the failure-injection paths
    where cleanup bugs actually hide.
    """
    if request.node.get_closest_marker("parallel") is None:
        yield
        return
    import glob
    before = set(glob.glob("/dev/shm/repro-*"))
    yield
    leaked = set(glob.glob("/dev/shm/repro-*")) - before
    assert not leaked, (
        f"test leaked shared-memory segments: {sorted(leaked)}")


@pytest.fixture
def machine2x2() -> Machine:
    return Machine(grid=(2, 2))


@pytest.fixture
def machine1d() -> Machine:
    return Machine(grid=(4,))


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_grid(n: int, seed: int = 0, dtype=np.float32) -> np.ndarray:
    return rng(seed).standard_normal((n, n)).astype(dtype)
