"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import Machine


@pytest.fixture
def machine2x2() -> Machine:
    return Machine(grid=(2, 2))


@pytest.fixture
def machine1d() -> Machine:
    return Machine(grid=(4,))


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_grid(n: int, seed: int = 0, dtype=np.float32) -> np.ndarray:
    return rng(seed).standard_normal((n, n)).astype(dtype)
