"""CM-2-style pattern-matcher baseline tests (paper section 6).

The robustness comparison: the pattern compiler accepts only the exact
sum-of-products single-statement CSHIFT shape; the paper's strategy
handles everything."""

import numpy as np
import pytest

from repro import kernels
from repro.baselines.pattern import (
    PatternStencilCompiler, match_stencil,
)
from repro.errors import PatternMatchError
from repro.frontend import parse_program
from repro.machine import Machine


def parse(src, n=16):
    return parse_program(src, bindings={"N": n})


class TestAccepted:
    def test_nine_point_cshift(self):
        pattern = match_stencil(parse(kernels.NINE_POINT_CSHIFT))
        assert pattern.source == "SRC"
        assert pattern.destination == "DST"
        assert pattern.points == 9
        offs = {o for o, _ in pattern.taps}
        assert offs == {(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)}

    def test_coefficients_captured(self):
        pattern = match_stencil(parse(kernels.NINE_POINT_CSHIFT))
        assert all(c is not None for _, c in pattern.taps)

    def test_unweighted_terms(self):
        src = """
        REAL A(8,8), B(8,8)
        A = CSHIFT(B,1,1) + CSHIFT(B,-1,1)
        """
        pattern = match_stencil(parse(src))
        assert pattern.points == 2
        assert all(c is None for _, c in pattern.taps)

    def test_compiles_and_runs(self):
        cc = PatternStencilCompiler()
        cp = cc.compile(kernels.NINE_POINT_CSHIFT, bindings={"N": 16})
        u = np.ones((16, 16), np.float32)
        res = cp.run(Machine(grid=(2, 2)), inputs={"SRC": u},
                     scalars={f"C{i}": 1.0 for i in range(1, 10)})
        assert res.arrays["DST"][4, 4] == 9.0
        assert cp.report.overlap_shifts == 4


class TestRejected:
    """Everything the paper says the CM-2 compiler could not handle."""

    def reject(self, src, fragment, n=16):
        with pytest.raises(PatternMatchError) as exc:
            match_stencil(parse(src, n))
        assert fragment in str(exc.value)

    def test_multi_statement_problem9(self):
        self.reject(kernels.PURDUE_PROBLEM9, "single array assignment")

    def test_array_syntax(self):
        self.reject(kernels.FIVE_POINT_ARRAY_SYNTAX, "sectioned")

    def test_two_source_arrays(self):
        self.reject("""
        REAL A(8,8), B(8,8), C(8,8)
        A = CSHIFT(B,1,1) + CSHIFT(C,1,1)
        """, "one source array")

    def test_non_sum_structure(self):
        self.reject("""
        REAL A(8,8), B(8,8)
        A = CSHIFT(B,1,1) / CSHIFT(B,-1,1)
        """, "sums of products")

    def test_negated_term(self):
        self.reject("""
        REAL A(8,8), B(8,8)
        A = CSHIFT(B,1,1) - CSHIFT(B,-1,1)
        """, "negated")

    def test_nonshift_operand(self):
        self.reject("""
        REAL A(8,8), B(8,8)
        A = 2.0 * (CSHIFT(B,1,1) + B)
        """, "CSHIFT chain")

    def test_compiler_raises(self):
        with pytest.raises(PatternMatchError):
            PatternStencilCompiler().compile(kernels.PURDUE_PROBLEM9,
                                             bindings={"N": 16})


class TestRobustnessContrast:
    """Our strategy succeeds exactly where the pattern matcher fails."""

    @pytest.mark.parametrize("src,out", [
        (kernels.PURDUE_PROBLEM9, "T"),
        (kernels.FIVE_POINT_ARRAY_SYNTAX, "DST"),
        (kernels.NINE_POINT_ARRAY_SYNTAX, "DST"),
    ])
    def test_general_strategy_handles_rejected_inputs(self, src, out):
        from repro.compiler import compile_hpf
        with pytest.raises(PatternMatchError):
            PatternStencilCompiler().compile(src, bindings={"N": 16})
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={out})
        assert cp.report.overlap_shifts == 4
