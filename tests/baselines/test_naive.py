"""xlhpf-like baseline tests."""

import numpy as np

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.compiler import compile_hpf
from repro.frontend import parse_program
from repro.machine import Machine
from repro.runtime.reference import evaluate


class TestCShiftPath:
    def test_full_shift_movement(self):
        cp = compile_xlhpf_like(kernels.PURDUE_PROBLEM9,
                                bindings={"N": 16}, outputs={"T"})
        assert cp.report.full_shifts == 8
        assert cp.report.overlap_shifts == 0

    def test_overhead_applied(self):
        # large enough that subgrid loops dominate communication
        naive = compile_xlhpf_like(kernels.PURDUE_PROBLEM9,
                                   bindings={"N": 256}, outputs={"T"})
        plain = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 256},
                            level="O0", outputs={"T"})
        tn = naive.run(Machine(grid=(2, 2))).modelled_time
        tp = plain.run(Machine(grid=(2, 2))).modelled_time
        assert tn > 5 * tp

    def test_results_still_correct(self):
        u = np.random.default_rng(0).standard_normal(
            (16, 16)).astype(np.float32)
        ref = evaluate(parse_program(kernels.PURDUE_PROBLEM9,
                                     bindings={"N": 16}),
                       inputs={"U": u})["T"]
        cp = compile_xlhpf_like(kernels.PURDUE_PROBLEM9,
                                bindings={"N": 16}, outputs={"T"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
        np.testing.assert_allclose(res.arrays["T"], ref, rtol=1e-5)

    def test_twelve_temporaries_single_statement(self):
        cp = compile_xlhpf_like(kernels.NINE_POINT_CSHIFT,
                                bindings={"N": 16}, outputs={"DST"})
        assert cp.report.temporaries == 12


class TestArraySyntaxPath:
    def test_no_temporaries(self):
        cp = compile_xlhpf_like(kernels.NINE_POINT_ARRAY_SYNTAX,
                                bindings={"N": 16}, outputs={"DST"})
        assert cp.report.temporaries == 0
        assert cp.report.full_shifts == 0
        assert cp.report.overlap_shifts > 0

    def test_no_overhead_on_good_path(self):
        cp = compile_xlhpf_like(kernels.NINE_POINT_ARRAY_SYNTAX,
                                bindings={"N": 16}, outputs={"DST"})
        assert "hpf_overhead" not in cp.report.pass_stats

    def test_close_to_our_best(self):
        n = 256
        base = compile_xlhpf_like(kernels.NINE_POINT_ARRAY_SYNTAX,
                                  bindings={"N": n}, outputs={"DST"})
        best = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": n},
                           level="O4", outputs={"T"})
        tb = base.run(Machine(grid=(2, 2))).modelled_time
        to = best.run(Machine(grid=(2, 2))).modelled_time
        # paper: tracks within ~10%
        assert to <= tb <= 1.25 * to

    def test_correct_results(self):
        u = np.random.default_rng(1).standard_normal(
            (16, 16)).astype(np.float32)
        c = {f"C{i}": float(i) for i in range(1, 10)}
        ref = evaluate(parse_program(kernels.NINE_POINT_ARRAY_SYNTAX,
                                     bindings={"N": 16}),
                       inputs={"SRC": u}, scalars=c)["DST"]
        cp = compile_xlhpf_like(kernels.NINE_POINT_ARRAY_SYNTAX,
                                bindings={"N": 16}, outputs={"DST"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"SRC": u}, scalars=c)
        np.testing.assert_allclose(res.arrays["DST"], ref, rtol=1e-5)
