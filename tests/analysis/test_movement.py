"""Data-movement trace tests (the paper's Figures 5-10 semantics)."""

import numpy as np
import pytest

from repro import kernels
from repro.analysis.movement import trace_movement
from repro.compiler import compile_hpf
from repro.machine import Machine


def trace(src, out, level, n=8, array=None):
    cp = compile_hpf(src, bindings={"N": n}, level=level, outputs={out})
    return trace_movement(cp.plan, Machine(grid=(2, 2)), array=array)


class TestFigure10:
    @pytest.fixture(scope="class")
    def t(self):
        return trace(kernels.PURDUE_PROBLEM9, "T", "O3", array="U")

    def test_four_ops(self, t):
        assert len(t.op_labels) == 4

    def test_every_overlap_cell_filled(self, t):
        for fills in t.arrays["U"]:
            assert (fills != 0).all()  # no cell left unfilled

    def test_corners_filled_by_dim2_ops(self, t):
        # ops 3 and 4 are the dim-2 shifts carrying the RSDs; on every
        # PE all four corner cells must carry their digits
        for fills in t.arrays["U"]:
            corners = [fills[0, 0], fills[0, -1],
                       fills[-1, 0], fills[-1, -1]]
            assert set(corners) <= {3, 4}

    def test_row_halos_filled_first(self, t):
        for fills in t.arrays["U"]:
            assert set(fills[0, 1:-1]) | set(fills[-1, 1:-1]) == {1, 2}

    def test_interior_untouched(self, t):
        for fills in t.arrays["U"]:
            assert (fills[1:-1, 1:-1] == -1).all()


class TestPreUnioning:
    def test_eight_ops_cover_everything(self):
        t = trace(kernels.PURDUE_PROBLEM9, "T", "O2", array="U")
        assert len(t.op_labels) == 8
        for fills in t.arrays["U"]:
            assert (fills != 0).all()


class TestFivePoint:
    def test_corners_never_filled(self):
        t = trace(kernels.FIVE_POINT_ARRAY_SYNTAX, "DST", "O3",
                  array="SRC")
        assert len(t.op_labels) == 4
        for fills in t.arrays["SRC"]:
            corners = [fills[0, 0], fills[0, -1],
                       fills[-1, 0], fills[-1, -1]]
            assert corners == [0, 0, 0, 0]  # a star needs no corners


class TestRendering:
    def test_render_symbols(self):
        t = trace(kernels.PURDUE_PROBLEM9, "T", "O3", array="U")
        text = t.render("U", 0)
        assert "." in text and "1" in text and "3" in text

    def test_render_grid_layout(self):
        t = trace(kernels.PURDUE_PROBLEM9, "T", "O3", array="U")
        text = t.render_grid("U", (2, 2))
        assert "|" in text and "---" in text
