"""Plan/report pretty-printer tests."""

import numpy as np

from repro import kernels
from repro.analysis.report import describe_plan, describe_result
from repro.compiler import compile_hpf
from repro.machine import Machine


def compiled(level="O4", src=None, outputs=None, **opts):
    return compile_hpf(src or kernels.PURDUE_PROBLEM9,
                       bindings={"N": 32},
                       level=level, outputs=outputs or {"T"}, **opts)


class TestDescribePlan:
    def test_arrays_section(self):
        text = describe_plan(compiled().plan)
        assert "U: 32x32 float32 dist(BLOCK,BLOCK) overlap=(1,1)x(1,1)" \
            in text

    def test_overlap_shift_lines(self):
        text = describe_plan(compiled().plan)
        assert "overlap_shift U shift=-1 dim=1" in text
        assert "rsd=[0:n1+1,*]" in text

    def test_fused_nest_block(self):
        text = describe_plan(compiled().plan)
        assert "fused subgrid loop nest" in text
        assert "per-point: 2 memory loads" in text
        assert "(unroll-and-jam x2)" in text

    def test_naive_plan_full_shifts(self):
        text = describe_plan(compiled(level="O0").plan)
        assert "full_cshift" in text
        assert "allocate TMP1" in text

    def test_do_loop_structure(self):
        src = """
        REAL A(32,32)
        DO K = 1, 5
          A = A + 1.0
        ENDDO
        """
        text = describe_plan(compiled(src=src, outputs={"A"}).plan)
        assert "do K = 1, 5" in text
        assert "end do" in text

    def test_if_structure(self):
        src = """
        REAL A(32,32)
        IF (X < 1) THEN
          A = 1.0
        ELSE
          A = 2.0
        ENDIF
        """
        text = describe_plan(compiled(src=src, outputs={"A"}).plan)
        assert "if (X < 1)" in text
        assert "else" in text


class TestDescribeResult:
    def test_summary_fields(self):
        cp = compiled()
        res = cp.run(Machine(grid=(2, 2)),
                     inputs={"U": np.ones((32, 32), np.float32)})
        text = describe_result(res)
        assert "messages: 16" in text
        assert "modelled time:" in text
        assert "communication fraction:" in text
        assert "peak memory per PE:" in text
