"""Halo-coverage verifier tests: it must accept every pipeline output
(implicitly covered by the whole suite, since the compiler runs it on
every compile) and reject hand-broken programs."""

import pytest

from repro import kernels
from repro.analysis.verify_offsets import verify_offset_coverage
from repro.frontend import parse_program
from repro.ir.nodes import (
    ArrayAssign, ArrayRef, BinOp, OffsetRef, OverlapShift,
)
from repro.ir.rsd import RSD, RSDim
from repro.passes.comm_union import CommUnionPass
from repro.passes.context_partition import ContextPartitionPass
from repro.passes.normalize import NormalizePass
from repro.passes.offset_arrays import OffsetArrayPass


def optimized_p9():
    p = parse_program(kernels.PURDUE_PROBLEM9, bindings={"N": 16})
    NormalizePass().run(p)
    OffsetArrayPass(outputs={"T"}).run(p)
    ContextPartitionPass().run(p)
    CommUnionPass().run(p)
    return p


def shifts_of(p):
    return [s for s in p.body if isinstance(s, OverlapShift)]


class TestAcceptsSoundPrograms:
    def test_problem9_pipeline(self):
        assert verify_offset_coverage(optimized_p9()) == []

    def test_pre_union_form(self):
        p = parse_program(kernels.PURDUE_PROBLEM9, bindings={"N": 16})
        NormalizePass().run(p)
        OffsetArrayPass(outputs={"T"}).run(p)
        assert verify_offset_coverage(p) == []

    def test_zero_offsets_need_nothing(self):
        p = parse_program("REAL A(8,8), B(8,8)\nA = B + 1")
        p.body[0].rhs = OffsetRef("B", (0, 0))
        assert verify_offset_coverage(p) == []


class TestCatchesBrokenPrograms:
    def test_missing_shift(self):
        p = optimized_p9()
        # delete one direction's shift: its offsets lose coverage
        victim = next(s for s in shifts_of(p)
                      if s.dim == 1 and s.shift == 1)
        p.body.remove(victim)
        problems = verify_offset_coverage(p)
        assert problems
        assert any("no overlap fill" in str(x) for x in problems)

    def test_insufficient_depth(self):
        p = optimized_p9()
        use = next(s for s in p.body if isinstance(s, ArrayAssign))
        # deepen a reference beyond the 1-cell fills
        deep = OffsetRef("U", (2, 0))
        use.rhs = BinOp("+", use.rhs, deep)
        problems = verify_offset_coverage(p)
        assert any("overlap depth" in str(x) for x in problems)

    def test_corner_without_rsd(self):
        p = optimized_p9()
        for s in shifts_of(p):
            s.rsd = None  # strip the corner pickup
        problems = verify_offset_coverage(p)
        assert any("corner cells" in str(x) for x in problems)

    def test_redefinition_invalidates(self):
        p = optimized_p9()
        # redefine U between the shifts and the uses
        first_use = next(i for i, s in enumerate(p.body)
                         if isinstance(s, ArrayAssign))
        from repro.ir.nodes import Const
        p.body.insert(first_use, ArrayAssign(ArrayRef("U"), Const(0.0)))
        problems = verify_offset_coverage(p)
        assert problems

    def test_fill_kind_mismatch(self):
        p = optimized_p9()
        for s in shifts_of(p):
            s.boundary = 0.0  # pretend the fills were EOSHIFT
        problems = verify_offset_coverage(p)
        assert any("fill kind mismatch" in str(x) for x in problems)

    def test_use_in_mask_checked(self):
        p = parse_program("REAL A(8,8), B(8,8)\nA = B + 1")
        stmt = p.body[0]
        stmt.mask = Compare_safe()
        problems = verify_offset_coverage(p)
        assert problems


def Compare_safe():
    from repro.ir.nodes import Compare, Const
    return Compare(">", OffsetRef("B", (1, 0)), Const(0.0))


class TestOrderIndependentCorners:
    """Corner pickup is credited in any shift order that actually
    carries the data — and only when the carried region was resident."""

    DESC = """
    REAL T(16,16), U(16,16)
    T = CSHIFT(CSHIFT(U,SHIFT=1,DIM=2),SHIFT=1,DIM=1)
    """

    def desc_program(self):
        p = parse_program(self.DESC)
        NormalizePass().run(p)
        OffsetArrayPass(outputs={"T"}).run(p)
        return p

    def test_descending_chain_accepted(self):
        # dim-2 shift first, then a dim-1 shift whose base offsets carry
        # the dim-2 component: sound, but rejected by the old
        # ascending-only corner rule
        p = self.desc_program()
        shifts = shifts_of(p)
        assert [s.dim for s in shifts] == [2, 1]
        assert verify_offset_coverage(p) == []

    def test_stale_pickup_rejected(self):
        # re-ordered so the carrying shift runs *before* the region it
        # claims to pick up is filled: the carried corner bytes would be
        # stale, and residency clamping must reject it
        p = self.desc_program()
        shifts = shifts_of(p)
        i, j = (p.body.index(shifts[0]), p.body.index(shifts[1]))
        p.body[i], p.body[j] = p.body[j], p.body[i]
        problems = verify_offset_coverage(p)
        assert any("corner cells" in str(x) for x in problems)


class TestControlFlowConservatism:
    def test_branch_local_fill_not_available_after_join(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        IF (X < 1) THEN
          B = CSHIFT(A,SHIFT=1,DIM=1)
        ENDIF
        C = B + 0
        """
        p = parse_program(src)
        NormalizePass().run(p)
        OffsetArrayPass(outputs={"C"}).run(p)
        # the pass itself must have produced a coverage-sound program
        assert verify_offset_coverage(p) == []

    def test_loop_killed_base(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        DO K = 1, 3
          C = C + B
          A = A + 1
        ENDDO
        """
        p = parse_program(src)
        NormalizePass().run(p)
        OffsetArrayPass(outputs={"C"}).run(p)
        assert verify_offset_coverage(p) == []
