"""Four-backend equivalence for loop-optimized plans.

Plans rewritten by the loop-aware passes — preheader-hoisted halo
exchanges and ping-pong ``SwapOp`` buffer rotation — must execute
bitwise-identically on every registered backend (perpe, vectorized,
parallel, compiled), including across repeated runs of the same
compiled program.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.kernels import KERNELS
from repro.testing import GeneratedProgram, backend_equivalence_check

pytestmark = pytest.mark.parallel

#: Variable-coefficient full-box Jacobi: the coefficient array A is
#: read-only inside the DO loop (its four exchanges hoist to the
#: preheader) and the full-box copy-back of UNEW into U becomes a
#: ``SwapOp`` — both loop passes fire on one plan.
HOIST_AND_SWAP = """
      REAL, DIMENSION(N,N) :: U, UNEW, A
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ ALIGN UNEW WITH U
!HPF$ ALIGN A WITH U
      DO K = 1, NITER
        UNEW = 0.25 * ( CSHIFT(A,+1,1) * CSHIFT(U,+1,1)
     &                + CSHIFT(A,-1,1) * CSHIFT(U,-1,1)
     &                + CSHIFT(A,+1,2) * CSHIFT(U,+1,2)
     &                + CSHIFT(A,-1,2) * CSHIFT(U,-1,2) )
        U = UNEW
      ENDDO
"""


def _loop_program(source: str, outputs: list[str],
                  bindings: dict) -> tuple[GeneratedProgram, dict]:
    prog = GeneratedProgram(source=source, arrays=outputs,
                            bindings=bindings)
    compiled = compile_hpf(source, bindings=bindings, level="O0",
                           outputs=set(outputs))
    rng = np.random.default_rng(11)
    inputs = {
        arr: rng.standard_normal(d.shape).astype(d.dtype)
        for arr, d in compiled.plan.arrays.items()
        if arr in compiled.plan.entry_arrays}
    return prog, inputs


def test_hoisted_and_swapped_plan_is_backend_equivalent():
    prog, inputs = _loop_program(HOIST_AND_SWAP, ["U"],
                                 {"N": 16, "NITER": 5})
    backend_equivalence_check(
        prog, inputs, levels=("O0", "O4"),
        compile_options={"plan_passes": True, "outputs": {"U"}})


def test_swapped_plan_survives_repeated_runs():
    # iterations > 1 re-runs the same compiled program on the same
    # machine: the parallel backend must re-bind swapped shared-memory
    # segments by birth name every run
    prog, inputs = _loop_program(HOIST_AND_SWAP, ["U"],
                                 {"N": 16, "NITER": 3})
    backend_equivalence_check(
        prog, inputs, levels=("O4",), iterations=2,
        compile_options={"plan_passes": True, "outputs": {"U"}})


@pytest.mark.parametrize("name", ["jacobi", "red_black", "cg"])
def test_solver_kernels_backend_equivalent_under_passes(name):
    spec = KERNELS[name]
    trip_key = next(k for k in spec.default_bindings if k != "N")
    bindings = {"N": 12, trip_key: 4}
    prog, inputs = _loop_program(spec.source, sorted(spec.outputs),
                                 bindings)
    prog = GeneratedProgram(source=prog.source, arrays=prog.arrays,
                            bindings=prog.bindings,
                            scalars=dict(spec.default_scalars))
    backend_equivalence_check(
        prog, inputs, levels=("O0", "O4"),
        compile_options={"plan_passes": True,
                         "outputs": set(spec.outputs)})
