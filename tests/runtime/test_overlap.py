"""OVERLAP_SHIFT semantics tests — the data movement of Figures 5-10."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.ir.rsd import RSD, RSDim
from repro.ir.types import Distribution
from repro.machine import Machine
from repro.runtime.darray import DArray
from repro.runtime.distribution import Layout
from repro.runtime.overlap import overlap_shift

from tests.conftest import random_grid


def make(machine, n=8, halo=1, dtype=np.float64):
    lay = Layout((n, n), Distribution.block(2), machine.topology)
    da = DArray.create(machine, "U", lay, np.dtype(dtype),
                       ((halo, halo), (halo, halo)))
    return da


def halo_slab(da, pe, dim0, sign, depth):
    """The halo slab (interior-extent orthogonally) filled by a shift."""
    padded = da.padded(pe)
    idx = []
    for k in range(da.rank):
        lo, hi = da.halo[k]
        n_local = padded.shape[k] - lo - hi
        if k == dim0:
            if sign > 0:
                idx.append(slice(lo + n_local, lo + n_local + depth))
            else:
                idx.append(slice(lo - depth, lo))
        else:
            idx.append(slice(lo, lo + n_local))
    return padded[tuple(idx)]


def expected_slab(g, da, pe, dim0, sign, depth):
    """Wrapped global values the slab must contain."""
    box = da.owned_box(pe)
    n = g.shape[dim0]
    idx = []
    for k, (lo, hi) in enumerate(box):
        if k == dim0:
            if sign > 0:
                # 1-based global row (hi + j), as a 0-based NumPy index
                rows = [(hi + j - 1) % n for j in range(1, depth + 1)]
            else:
                rows = [(lo - 1 - j) % n for j in range(depth, 0, -1)]
            idx.append(rows)
        else:
            idx.append(list(range(lo - 1, hi)))
    return g[np.ix_(*idx)]


class TestBasicFill:
    @pytest.mark.parametrize("shift,dim", [(1, 1), (-1, 1), (1, 2), (-1, 2)])
    def test_unit_shift_fills_correct_side(self, machine2x2, shift, dim):
        da = make(machine2x2)
        g = random_grid(8, dtype=np.float64)
        da.scatter(g)
        overlap_shift(machine2x2, da, shift, dim)
        sign = 1 if shift > 0 else -1
        for pe in range(4):
            np.testing.assert_array_equal(
                halo_slab(da, pe, dim - 1, sign, 1),
                expected_slab(g, da, pe, dim - 1, sign, 1))

    def test_depth_two_shift(self, machine2x2):
        da = make(machine2x2, halo=2)
        g = random_grid(8, dtype=np.float64)
        da.scatter(g)
        overlap_shift(machine2x2, da, 2, 1)
        for pe in range(4):
            np.testing.assert_array_equal(
                halo_slab(da, pe, 0, 1, 2),
                expected_slab(g, da, pe, 0, 1, 2))

    def test_other_side_untouched(self, machine2x2):
        da = make(machine2x2)
        da.scatter(random_grid(8, dtype=np.float64))
        overlap_shift(machine2x2, da, 1, 1)
        for pe in range(4):
            assert not halo_slab(da, pe, 0, -1, 1).any()

    def test_interior_untouched(self, machine2x2):
        da = make(machine2x2)
        g = random_grid(8, dtype=np.float64)
        da.scatter(g)
        overlap_shift(machine2x2, da, 1, 2)
        np.testing.assert_array_equal(da.gather(), g)

    def test_message_count_one_per_pe(self, machine2x2):
        da = make(machine2x2)
        da.scatter(random_grid(8, dtype=np.float64))
        overlap_shift(machine2x2, da, 1, 1)
        assert machine2x2.report.messages == 4

    def test_message_bytes(self, machine2x2):
        da = make(machine2x2)
        da.scatter(random_grid(8, dtype=np.float64))
        overlap_shift(machine2x2, da, -1, 2)
        # each PE sends a 4-element float64 column
        assert machine2x2.report.message_bytes == 4 * 4 * 8

    def test_zero_shift_rejected(self, machine2x2):
        da = make(machine2x2)
        with pytest.raises(ExecutionError):
            overlap_shift(machine2x2, da, 0, 1)

    def test_halo_too_small(self, machine2x2):
        da = make(machine2x2, halo=1)
        with pytest.raises(ExecutionError):
            overlap_shift(machine2x2, da, 2, 1)

    def test_bad_dim(self, machine2x2):
        da = make(machine2x2)
        with pytest.raises(ExecutionError):
            overlap_shift(machine2x2, da, 1, 3)


class TestCornerPickup:
    """Figures 7-10: dim-2 shifts with an RSD carry the dim-1 overlap
    cells so all corner elements are populated with four messages."""

    def _nine_point_fill(self, machine):
        da = make(machine)
        g = random_grid(8, dtype=np.float64)
        da.scatter(g)
        rsd = RSD((RSDim(1, 1), None))
        overlap_shift(machine, da, -1, 1)
        overlap_shift(machine, da, +1, 1)
        overlap_shift(machine, da, -1, 2, rsd=rsd)
        overlap_shift(machine, da, +1, 2, rsd=rsd)
        return da, g

    def test_all_overlap_cells_filled(self, machine2x2):
        da, g = self._nine_point_fill(machine2x2)
        n = 8
        for pe in range(4):
            padded = da.padded(pe)
            (lo0, hi0), (lo1, hi1) = da.owned_box(pe)
            for li in range(padded.shape[0]):
                for lj in range(padded.shape[1]):
                    gi = (lo0 - 1 + li - 1) % n  # -1 halo, 0-based global
                    gj = (lo1 - 1 + lj - 1) % n
                    assert padded[li, lj] == g[gi, gj], (pe, li, lj)

    def test_exactly_four_messages(self, machine2x2):
        self._nine_point_fill(machine2x2)
        assert machine2x2.report.messages == 16  # 4 shifts x 4 PEs

    def test_without_rsd_corners_missing(self, machine2x2):
        da = make(machine2x2)
        g = random_grid(8, dtype=np.float64)
        da.scatter(g)
        overlap_shift(machine2x2, da, -1, 1)
        overlap_shift(machine2x2, da, +1, 1)
        overlap_shift(machine2x2, da, -1, 2)
        overlap_shift(machine2x2, da, +1, 2)
        # the (0,0) corner of PE 3's padded block was never communicated
        assert da.padded(3)[0, 0] == 0.0

    def test_rsd_exceeding_halo_rejected(self, machine2x2):
        da = make(machine2x2, halo=1)
        rsd = RSD((RSDim(2, 2), None))
        with pytest.raises(ExecutionError):
            overlap_shift(machine2x2, da, 1, 2, rsd=rsd)


class TestCollapsedDim:
    def test_collapsed_shift_is_local_copy(self):
        from repro.ir.types import DistKind
        m = Machine(grid=(4,))
        lay = Layout((8, 8), Distribution((DistKind.BLOCK,
                                           DistKind.COLLAPSED)),
                     m.topology)
        da = DArray.create(m, "U", lay, np.dtype(np.float64),
                           ((1, 1), (1, 1)))
        g = random_grid(8, dtype=np.float64)
        da.scatter(g)
        overlap_shift(m, da, 1, 2)
        assert m.report.messages == 0
        assert m.report.copies == 4
        # halo columns hold the wrapped first column
        for pe in range(4):
            box0 = da.owned_box(pe)[0]
            np.testing.assert_array_equal(
                halo_slab(da, pe, 1, 1, 1)[:, 0],
                g[box0[0] - 1:box0[1], 0])


class TestEOShiftBoundary:
    def test_edge_pes_get_boundary(self, machine2x2):
        da = make(machine2x2)
        g = random_grid(8, dtype=np.float64)
        da.scatter(g)
        overlap_shift(machine2x2, da, 1, 1, boundary=9.5)
        # PEs 2,3 own the global high edge of dim 1 -> boundary slab
        for pe in (2, 3):
            assert (halo_slab(da, pe, 0, 1, 1) == 9.5).all()
        # PEs 0,1 are interior -> received real data
        for pe in (0, 1):
            np.testing.assert_array_equal(
                halo_slab(da, pe, 0, 1, 1),
                expected_slab(g, da, pe, 0, 1, 1))

    def test_fewer_messages_than_cshift(self, machine2x2):
        da = make(machine2x2)
        da.scatter(random_grid(8, dtype=np.float64))
        overlap_shift(machine2x2, da, 1, 1, boundary=0.0)
        assert machine2x2.report.messages == 2  # only interior receivers


@settings(max_examples=25, deadline=None)
@given(n=st.sampled_from([8, 12, 16]),
       shift=st.sampled_from([-2, -1, 1, 2]),
       dim=st.sampled_from([1, 2]),
       seed=st.integers(0, 10))
def test_overlap_fill_property(n, shift, dim, seed):
    """Any legal shift fills its slab with wrapped neighbor values."""
    m = Machine(grid=(2, 2))
    lay = Layout((n, n), Distribution.block(2), m.topology)
    da = DArray.create(m, "U", lay, np.dtype(np.float64),
                       ((2, 2), (2, 2)))
    g = np.random.default_rng(seed).standard_normal((n, n))
    da.scatter(g)
    overlap_shift(m, da, shift, dim)
    sign = 1 if shift > 0 else -1
    for pe in range(4):
        np.testing.assert_array_equal(
            halo_slab(da, pe, dim - 1, sign, abs(shift)),
            expected_slab(g, da, pe, dim - 1, sign, abs(shift)))
