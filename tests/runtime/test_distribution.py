"""BLOCK distribution index-math tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.ir.types import DistKind, Distribution
from repro.machine.topology import ProcessorGrid
from repro.runtime.distribution import BlockDim, Layout


class TestBlockDim:
    def test_even_split(self):
        b = BlockDim(8, 4)
        assert b.block == 2
        assert b.owner_range(0) == (1, 2)
        assert b.owner_range(3) == (7, 8)

    def test_uneven_split(self):
        b = BlockDim(10, 4)  # blocks of 3: (1-3)(4-6)(7-9)(10-10)
        assert b.owner_range(3) == (10, 10)
        assert b.local_extent(3) == 1
        assert b.min_local_extent == 1

    def test_empty_block_rejected(self):
        with pytest.raises(MachineError):
            BlockDim(5, 4)  # ceil(5/4)=2 -> proc 3 would be empty

    def test_owner_of(self):
        b = BlockDim(10, 4)
        assert b.owner_of(1) == 0
        assert b.owner_of(10) == 3

    def test_owner_out_of_range(self):
        with pytest.raises(MachineError):
            BlockDim(10, 2).owner_of(11)

    def test_to_local(self):
        b = BlockDim(8, 2)
        assert b.to_local(5, 1) == 0
        with pytest.raises(MachineError):
            b.to_local(5, 0)

    @given(st.integers(1, 64), st.integers(1, 8))
    def test_partition_property(self, n, p):
        try:
            b = BlockDim(n, p)
        except MachineError:
            return
        covered = []
        for j in range(p):
            lo, hi = b.owner_range(j)
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(1, n + 1))
        for g in range(1, n + 1):
            j = b.owner_of(g)
            lo, hi = b.owner_range(j)
            assert lo <= g <= hi


class TestLayout:
    def _layout(self, shape=(8, 8), dist=None, grid=(2, 2)):
        dist = dist or Distribution.block(len(shape))
        return Layout(shape, dist, ProcessorGrid(grid))

    def test_owned_boxes_tile_the_array(self):
        lay = self._layout()
        seen = set()
        for pe in lay.grid.ranks():
            (l0, h0), (l1, h1) = lay.owned_box(pe)
            for i in range(l0, h0 + 1):
                for j in range(l1, h1 + 1):
                    assert (i, j) not in seen
                    seen.add((i, j))
        assert len(seen) == 64

    def test_collapsed_dim_full_everywhere(self):
        lay = self._layout(dist=Distribution((DistKind.BLOCK,
                                              DistKind.COLLAPSED)),
                           grid=(4,))
        for pe in lay.grid.ranks():
            assert lay.owned_box(pe)[1] == (1, 8)

    def test_grid_rank_mismatch(self):
        with pytest.raises(MachineError):
            self._layout(grid=(4,))

    def test_owner_rank(self):
        lay = self._layout()
        assert lay.owner_rank((1, 1)) == 0
        assert lay.owner_rank((8, 8)) == 3
        assert lay.owner_rank((8, 1)) == 2

    def test_local_shape(self):
        lay = self._layout()
        assert lay.local_shape(0) == (4, 4)

    def test_neighbor_along_array_dim(self):
        lay = self._layout()
        assert lay.neighbor(0, 0, +1) == 2  # down the first array dim
        assert lay.neighbor(0, 1, +1) == 1

    def test_max_shift_distributed(self):
        lay = self._layout()
        assert lay.max_shift(0) == 4

    def test_max_shift_collapsed(self):
        lay = self._layout(dist=Distribution((DistKind.BLOCK,
                                              DistKind.COLLAPSED)),
                           grid=(4,))
        assert lay.max_shift(1) == 8
