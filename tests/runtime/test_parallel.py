"""Differential tests: the process-parallel backend.

The ``parallel`` backend's contract is the same strict equivalence the
vectorized backend promises — bitwise-equal arrays and scalars AND an
identical *modelled* cost report and tagged message log on every valid
plan — plus real measured wall-clock per worker.  These tests enforce
the contract over the named paper kernels and random programs at every
optimization level, and cover the parallel-specific machinery: worker
mapping (round-robin, oversubscription, the PE-count cap), shared-memory
segment cleanup (the autouse ``no_shm_leaks`` fixture audits every test
here), worker error propagation, failure injection (dead, stalled, and
corrupting workers), and the per-worker measured profile tracks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_hpf
from repro.errors import ExecutionError
from repro.kernels import KERNELS, run_kernel
from repro.machine import Machine
from repro.runtime.backends import get_backend
from repro.runtime.parallel import BARRIER_TIMEOUT_ENV, INJECT_ENV
from repro.testing import (
    GeneratedProgram, backend_equivalence_check, random_inputs,
    random_program,
)

pytestmark = pytest.mark.parallel

SMALL_N = {"five_point": 12, "nine_point_cshift": 12, "nine_point": 12,
           "purdue9": 12, "twentyfive_point": 16, "seven_point_3d": 8,
           "box27_3d": 8, "jacobi": 12, "red_black": 12, "cg": 12}


def _kernel_program(name: str) -> tuple[GeneratedProgram, dict]:
    """Wrap a registry kernel as a GeneratedProgram with seeded inputs,
    so the named kernels run through ``backend_equivalence_check``."""
    spec = KERNELS[name]
    prog = GeneratedProgram(source=spec.source,
                            arrays=sorted(spec.outputs),
                            scalars=dict(spec.default_scalars),
                            bindings={**spec.default_bindings,
                                      "N": SMALL_N[name]})
    compiled = compile_hpf(spec.source, bindings=prog.bindings,
                           level="O0", outputs=set(spec.outputs))
    rng = np.random.default_rng(7)
    inputs = {
        arr: rng.standard_normal(decl.shape).astype(decl.dtype)
        for arr, decl in compiled.plan.arrays.items()
        if arr in compiled.plan.entry_arrays}
    return prog, inputs


def _run(name, *, workers, level="O2", grid=(2, 2), **kw):
    machine = Machine(grid=grid, keep_message_log=True)
    res = run_kernel(name, bindings={"N": SMALL_N[name]}, level=level,
                     backend="parallel", machine=machine,
                     workers=workers, **kw)
    return res, machine


class TestNamedKernels:
    """Acceptance: the three-backend equivalence check passes for every
    named kernel at every optimization level."""

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_equivalence_all_levels(self, name):
        prog, inputs = _kernel_program(name)
        backend_equivalence_check(
            prog, inputs, levels=("O0", "O1", "O2", "O3", "O4"))

    @pytest.mark.parametrize("grid", [(4, 1), (1, 4), (3, 2)])
    def test_asymmetric_grids(self, grid):
        prog, inputs = _kernel_program("nine_point")
        backend_equivalence_check(prog, inputs, levels=("O4",),
                                  grids=(grid,))

    def test_multi_iteration(self):
        prog, inputs = _kernel_program("purdue9")
        backend_equivalence_check(prog, inputs, levels=("O4",),
                                  iterations=3)


class TestRandomPrograms:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_default_generator(self, seed):
        prog = random_program(seed)
        backend_equivalence_check(prog, random_inputs(seed, prog),
                                  levels=("O0", "O4"))


class TestWorkerMapping:
    """The PE-to-worker map is round-robin ``pe % W`` with ``W`` capped
    at the PE count; the result must not depend on the mapping."""

    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 8, None])
    def test_any_worker_count_is_equivalent(self, workers):
        ref = run_kernel("nine_point", bindings={"N": 12}, level="O2",
                         machine=Machine(grid=(2, 2)))
        res, _ = _run("nine_point", workers=workers)
        np.testing.assert_array_equal(ref.arrays["DST"],
                                      res.arrays["DST"])
        assert ref.report.summary() == res.report.summary()
        assert ref.report.pe_times == res.report.pe_times

    def test_worker_cap_at_pe_count(self):
        cls = get_backend("parallel")
        compiled = compile_hpf(KERNELS["five_point"].source,
                               bindings={"N": 12}, level="O2",
                               outputs={"DST"})
        ex = cls(compiled.plan, Machine(grid=(2, 2)), None, False,
                 workers=64)
        try:
            assert ex.nworkers == 4  # capped at npes
            assert ex.owner_of == [0, 1, 2, 3]
        finally:
            ex.close()

    def test_round_robin_when_fewer_workers(self):
        cls = get_backend("parallel")
        compiled = compile_hpf(KERNELS["five_point"].source,
                               bindings={"N": 12}, level="O2",
                               outputs={"DST"})
        ex = cls(compiled.plan, Machine(grid=(3, 2)), None, False,
                 workers=4)
        try:
            assert ex.nworkers == 4
            assert ex.owner_of == [0, 1, 2, 3, 0, 1]
        finally:
            ex.close()

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ExecutionError, match="worker"):
            _run("five_point", workers=0)

    @pytest.mark.parametrize("bad", [0, -1, -64])
    def test_invalid_worker_counts_raise_usage_error(self, bad):
        """Regression: ``workers=0`` (and negatives) used to slip past
        validation and die deep in the pool machinery; now the backend
        rejects them at entry with a named error, before any worker
        process or shared-memory segment is created."""
        from repro.errors import UsageError
        with pytest.raises(UsageError, match=">= 1 worker"):
            _run("five_point", workers=bad)

    @pytest.mark.parametrize("bad", [2.0, "2", True])
    def test_non_int_worker_counts_raise_usage_error(self, bad):
        from repro.errors import UsageError
        with pytest.raises(UsageError, match="must be an int"):
            _run("five_point", workers=bad)

    def test_huge_worker_count_is_capped_not_fatal(self):
        res, _ = _run("five_point", workers=10_000)
        ref = run_kernel("five_point", bindings={"N": 12}, level="O2",
                         machine=Machine(grid=(2, 2)))
        np.testing.assert_array_equal(ref.arrays["DST"],
                                      res.arrays["DST"])
        assert ref.report.summary() == res.report.summary()


class TestMeasuredProfile:
    def test_worker_tracks_attached(self):
        res, _ = _run("nine_point", workers=2, profile=True)
        tracks = res.profile.worker_tracks
        assert tracks is not None and len(tracks) == 2
        covered = sorted(pe for t in tracks for pe in t["pes"])
        assert covered == [0, 1, 2, 3]
        for t in tracks:
            assert t["wall_s"] >= 0.0
            assert t["events"], "worker track has no measured events"
            for ev in t["events"]:
                assert ev["t1"] >= ev["t0"] >= 0.0

    def test_single_worker_track_keeps_all_samples(self):
        """Regression: tracks are keyed by *worker*, not by PE.  With
        one worker owning all four PEs of a 2x2 grid, the old keying
        collapsed round-robin PEs onto the same entry and dropped
        measured samples; the single track must carry every op exactly
        once."""
        res, _ = _run("nine_point", workers=1, profile=True)
        tracks = res.profile.worker_tracks
        assert len(tracks) == 1
        track = tracks[0]
        assert track["worker"] == 0
        assert track["pes"] == [0, 1, 2, 3]
        ops = [ev["op"] for ev in track["events"]]
        assert ops == sorted(set(ops)), "samples dropped or duplicated"
        # every worker dispatches the same op sequence, so the lone
        # track must hold as many events as any workers=2 track
        two, _ = _run("nine_point", workers=2, profile=True)
        assert len(ops) == len(two.profile.worker_tracks[0]["events"])

    def test_modelled_profile_matches_perpe(self):
        machine = Machine(grid=(2, 2), keep_message_log=True)
        ref = run_kernel("nine_point", bindings={"N": 12}, level="O2",
                         machine=machine, profile=True)
        res, _ = _run("nine_point", workers=2, profile=True)
        assert ref.profile.matrix == res.profile.matrix
        assert ref.profile.totals["messages_by_class"] == \
            res.profile.totals["messages_by_class"]
        assert ref.profile.worker_tracks is None  # perpe has no workers

    def test_chrome_trace_gets_worker_track(self):
        from repro.obs.export import chrome_trace
        res, _ = _run("nine_point", workers=2, profile=True)
        events = chrome_trace(res.profile)["traceEvents"]
        worker_events = [e for e in events
                         if e.get("cat") == "worker-wall"]
        assert worker_events
        assert all(e["pid"] == 2 for e in worker_events)

    def test_profile_dict_roundtrip_keeps_tracks(self):
        from repro.obs.profile import CommProfile
        res, _ = _run("nine_point", workers=2, profile=True)
        revived = CommProfile.from_dict(res.profile.to_dict())
        assert revived.worker_tracks == res.profile.worker_tracks
        # perpe profiles must serialize exactly as before (no new key)
        ref = run_kernel("nine_point", bindings={"N": 12}, level="O2",
                         machine=Machine(grid=(2, 2),
                                         keep_message_log=True),
                         profile=True)
        assert "worker_tracks" not in ref.profile.to_dict()


class TestLifecycle:
    """Leak auditing itself lives in the autouse ``no_shm_leaks``
    fixture (tests/conftest.py); these tests exercise the paths that
    used to leak — multi-iteration runs and worker error unwinding."""

    def test_multi_iteration_run_cleans_up(self):
        _run("purdue9", workers=2, iterations=2)

    def test_worker_error_propagates_and_cleans_up(self):
        machine = Machine(grid=(2, 2), memory_per_pe=64)
        with pytest.raises(ExecutionError, match="worker") as exc:
            run_kernel("five_point", bindings={"N": 12},
                       backend="parallel", workers=2, machine=machine)
        # the modelled OOM raised inside the worker reaches the caller
        assert "SimulatedOutOfMemoryError" in str(exc.value)

    def test_scalars_and_reductions_agree(self):
        prog = random_program(4242)  # generator mixes in reductions
        backend_equivalence_check(prog, random_inputs(4242, prog),
                                  levels=("O4",))


class TestStaleSegmentReclamation:
    """A coordinator killed with SIGKILL never runs ``close()``, so its
    segments leak in /dev/shm until reboot.  Run ids embed the creator
    pid; ``reclaim_stale_segments`` unlinks segments whose creator is
    dead and leaves everything else — live runs, foreign names —
    strictly alone."""

    # Child: build a coordinator, materialize entry arrays (coll +
    # per-PE block segments appear in /dev/shm), report the run id,
    # then die without any cleanup.
    CHILD = """\
import os, signal
from repro.compiler import compile_hpf
from repro.kernels import KERNELS
from repro.machine import Machine
from repro.runtime.parallel import ParallelExec

spec = KERNELS["five_point"]
compiled = compile_hpf(spec.source, bindings={"N": 12}, level="O0",
                       outputs=set(spec.outputs))
ex = ParallelExec(compiled.plan, Machine(grid=(2, 2)), {}, False)
for name in compiled.plan.entry_arrays:
    ex.materialize(name)
print(ex.run_id, flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""

    def test_run_id_embeds_creator_pid(self):
        import os
        spec = KERNELS["five_point"]
        compiled = compile_hpf(spec.source, bindings={"N": 12},
                               level="O0", outputs=set(spec.outputs))
        from repro.runtime.parallel import ParallelExec
        ex = ParallelExec(compiled.plan, Machine(grid=(2, 2)), {}, False)
        try:
            assert ex.run_id.split("-")[1] == str(os.getpid())
        finally:
            ex.close()

    def test_killed_coordinator_segments_reclaimed(self):
        import glob
        import subprocess
        import sys
        from repro.runtime.parallel import reclaim_stale_segments
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == -9, proc.stderr
        run_id = proc.stdout.strip()
        assert run_id.startswith("repro-")
        leaked = glob.glob(f"/dev/shm/{run_id}-*")
        assert leaked, "child should have left segments behind"
        reclaimed = reclaim_stale_segments()
        assert set(f"/dev/shm/{n}" for n in reclaimed) >= set(leaked)
        assert not glob.glob(f"/dev/shm/{run_id}-*")

    def test_live_and_foreign_segments_untouched(self, tmp_path):
        import os
        import subprocess
        import sys
        from repro.runtime.parallel import reclaim_stale_segments
        live = subprocess.Popen([sys.executable, "-c",
                                 "import time; time.sleep(60)"])
        try:
            names = {
                "mine": f"repro-{os.getpid()}-aaa-x-g1-p0",
                "live": f"repro-{live.pid}-bbb-x-g1-p0",
                "dead": f"repro-{_dead_pid()}-ccc-x-g1-p0",
                "legacy": "repro-deadbeefcafe-x-g1-p0",
                "foreign": "repro-notapid-extra-thing",
            }
            for name in names.values():
                (tmp_path / name).write_text("")
            reclaimed = reclaim_stale_segments(str(tmp_path))
            assert reclaimed == [names["dead"]]
            survivors = sorted(p.name for p in tmp_path.iterdir())
            assert survivors == sorted(
                v for k, v in names.items() if k != "dead")
        finally:
            live.kill()
            live.wait()

    def test_throttled_scan_skips_within_interval(self, tmp_path,
                                                  monkeypatch):
        from repro.runtime import parallel
        pid = _dead_pid()
        (tmp_path / f"repro-{pid}-abc-x-g1-p0").write_text("")
        monkeypatch.setattr(parallel, "_last_reclaim", 0.0)
        assert parallel.reclaim_stale_segments(
            str(tmp_path), throttle=True)
        (tmp_path / f"repro-{pid}-def-x-g1-p0").write_text("")
        assert parallel.reclaim_stale_segments(
            str(tmp_path), throttle=True) == []
        assert parallel.reclaim_stale_segments(str(tmp_path))


def _dead_pid() -> int:
    """A pid guaranteed to name no live process: spawn a trivial child,
    reap it, return its (now free) pid."""
    import subprocess
    import sys
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    return child.pid


class TestFailureInjection:
    """A failing worker must surface fast, with a diagnostic naming the
    failed worker and its PEs — and leave /dev/shm clean (audited by
    the autouse fixture)."""

    def _run_injected(self, monkeypatch, spec, *, timeout="2.0"):
        monkeypatch.setenv(INJECT_ENV, spec)
        monkeypatch.setenv(BARRIER_TIMEOUT_ENV, timeout)
        machine = Machine(grid=(2, 2), keep_message_log=True)
        with pytest.raises(ExecutionError) as exc:
            run_kernel("nine_point", bindings={"N": 12}, level="O2",
                       backend="parallel", workers=2, machine=machine)
        return exc.value

    def test_dead_worker_named_with_pes(self, monkeypatch):
        err = str(self._run_injected(monkeypatch, "die:1"))
        assert "worker 1" in err
        assert "[1, 3]" in err  # the round-robin PEs worker 1 owned
        assert "died" in err and "exit code 3" in err

    def test_dead_worker_detected_quickly(self, monkeypatch):
        import time
        monkeypatch.setenv(INJECT_ENV, "die:0")
        machine = Machine(grid=(2, 2))
        t0 = time.monotonic()
        with pytest.raises(ExecutionError, match="worker 0"):
            run_kernel("nine_point", bindings={"N": 12}, level="O2",
                       backend="parallel", workers=2, machine=machine)
        # liveness polling, not the (default 120s) barrier timeout
        assert time.monotonic() - t0 < 30.0

    def test_stalled_worker_hits_barrier_timeout(self, monkeypatch):
        err = str(self._run_injected(monkeypatch, "stall:1",
                                     timeout="0.5"))
        assert "worker 1" in err
        assert "[1, 3]" in err

    def test_corrupted_collective_payload_detected(self, monkeypatch):
        # nine_point has no reductions; use a program with one so the
        # corruption lands on a collective payload
        monkeypatch.setenv(INJECT_ENV, "corrupt:1")
        machine = Machine(grid=(2, 2))
        source = ("      REAL, DIMENSION(N,N) :: A\n"
                  "!HPF$ DISTRIBUTE A(BLOCK,BLOCK)\n"
                  "      S = SUM(A)\n"
                  "      A = A + S * 0.001\n")
        compiled = compile_hpf(source, bindings={"N": 12}, level="O2",
                               outputs={"A"})
        with pytest.raises(ExecutionError, match="diverged") as exc:
            compiled.run(machine, inputs={"A": np.ones((12, 12))},
                         backend="parallel", workers=2)
        err = str(exc.value)
        assert "worker 1" in err
        assert "PEs [1, 3]" in err

    def test_unset_env_is_inert(self, monkeypatch):
        monkeypatch.delenv(INJECT_ENV, raising=False)
        res, _ = _run("nine_point", workers=2)
        ref = run_kernel("nine_point", bindings={"N": 12}, level="O2",
                         machine=Machine(grid=(2, 2)))
        np.testing.assert_array_equal(ref.arrays["DST"],
                                      res.arrays["DST"])


class TestScalarCommunication:
    """Control-flow scalars are communicated, not recomputed on faith:
    every worker's value passes through the collective channel."""

    DOWHILE = ("      REAL, DIMENSION(N,N) :: A, B\n"
               "!HPF$ DISTRIBUTE A(BLOCK,BLOCK)\n"
               "!HPF$ ALIGN B WITH A\n"
               "      S = SUM(A)\n"
               "      DO WHILE (S > 1.0)\n"
               "        A = 0.5 * A + 0.1 * CSHIFT(B, SHIFT=1, DIM=1)\n"
               "        S = S * 0.25\n"
               "      ENDDO\n"
               "      B = A + S\n")

    def test_do_while_loop_agrees_across_backends(self):
        prog = GeneratedProgram(source=self.DOWHILE, arrays=["A", "B"],
                                bindings={"N": 12})
        rng_ = np.random.default_rng(11)
        inputs = {"A": rng_.uniform(0.1, 1.0, (12, 12)),
                  "B": rng_.uniform(0.1, 1.0, (12, 12))}
        backend_equivalence_check(prog, inputs,
                                  levels=("O0", "O2", "O4"))
