"""Differential tests: the vectorized backend vs the per-PE executor.

The vectorized backend's contract is strict equivalence — bitwise-equal
arrays and scalars AND an identical cost report (message/byte/copy
counts, per-PE modelled times, peak memory) on every valid plan.  These
tests enforce it over the named paper kernels and random programs from
the differential generator, including collapsed dimensions
((BLOCK,BLOCK,*) 3-D kernels) and EOSHIFT boundary fills, at every
optimization level, against the O0 baseline and the serial reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_hpf
from repro.compiler.plan import LoopNestOp, NestStmt
from repro.errors import ExecutionError
from repro.ir.nodes import OffsetRef
from repro.kernels import KERNELS, run_kernel
from repro.machine import Machine
from repro.machine.cost_model import LoopStats
from repro.runtime.executor import executor_class
from repro.testing import (
    GeneratorConfig, backend_equivalence_check, random_inputs,
    random_program,
)

SMALL_N = {"five_point": 12, "nine_point_cshift": 12, "nine_point": 12,
           "purdue9": 12, "twentyfive_point": 16, "seven_point_3d": 8,
           "box27_3d": 8, "jacobi": 12, "red_black": 12, "cg": 12}


def _results(name: str, level: str, grid: tuple[int, ...]):
    out = {}
    for backend in ("perpe", "vectorized"):
        machine = Machine(grid=grid, keep_message_log=False)
        out[backend] = run_kernel(
            name, bindings={"N": SMALL_N[name]}, level=level,
            backend=backend, machine=machine, iterations=2, seed=1)
    return out["perpe"], out["vectorized"]


class TestNamedKernels:
    @pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3", "O4"])
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_bitwise_and_cost_identical(self, name, level):
        a, b = _results(name, level, (2, 2))
        assert set(a.arrays) == set(b.arrays)
        for arr in a.arrays:
            np.testing.assert_array_equal(a.arrays[arr], b.arrays[arr],
                                          err_msg=f"{name} {level} {arr}")
        assert a.scalars == b.scalars
        assert a.report.summary() == b.report.summary()
        assert a.report.pe_times == b.report.pe_times
        assert a.peak_memory_per_pe == b.peak_memory_per_pe

    @pytest.mark.parametrize("grid", [(4, 1), (1, 4), (3, 2)])
    def test_asymmetric_grids(self, grid):
        for name in ("nine_point", "purdue9", "seven_point_3d"):
            a, b = _results(name, "O4", grid)
            for arr in a.arrays:
                np.testing.assert_array_equal(a.arrays[arr], b.arrays[arr])
            assert a.report.summary() == b.report.summary()


class TestRandomPrograms:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_default_generator(self, seed):
        prog = random_program(seed)
        backend_equivalence_check(prog, random_inputs(seed, prog))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_collapsed_dim_3d(self, seed):
        cfg = GeneratorConfig(ndim=3, n=8, n_statements=3,
                              allow_where=False)
        prog = random_program(seed, cfg)
        backend_equivalence_check(prog, random_inputs(seed, prog, cfg),
                                  levels=("O0", "O4"))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_eoshift_boundaries_wide_offsets(self, seed):
        cfg = GeneratorConfig(n=16, max_offset=3, n_statements=5,
                              eoshift_boundary=-1.25)
        prog = random_program(seed, cfg)
        backend_equivalence_check(prog, random_inputs(seed, prog, cfg),
                                  levels=("O1", "O3"),
                                  grids=((2, 2), (4, 1)))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_multi_iteration_runs(self, seed):
        prog = random_program(seed)
        backend_equivalence_check(prog, random_inputs(seed, prog),
                                  levels=("O4",), iterations=3)


class TestReferenceAgreement:
    """Both backends must also agree with the serial NumPy reference
    (ties the backend equivalence to ground truth, not just to each
    other)."""

    @pytest.mark.parametrize("backend", ["perpe", "vectorized"])
    def test_against_reference(self, backend):
        from repro.frontend import parse_program
        from repro.runtime.reference import evaluate

        prog = random_program(77)
        inputs = random_inputs(77, prog)
        parsed = parse_program(prog.source, bindings=prog.bindings)
        ref = evaluate(parsed, inputs=inputs, scalars=prog.scalars)
        compiled = compile_hpf(prog.source, bindings=prog.bindings,
                               level="O4", outputs=set(prog.arrays))
        res = compiled.run(Machine(grid=(2, 2)), inputs=inputs,
                           scalars=prog.scalars, backend=backend)
        for name in prog.arrays:
            np.testing.assert_allclose(res.arrays[name], ref[name],
                                       rtol=1e-6, atol=1e-12)


class TestGuards:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError, match="unknown execution "
                                                 "backend"):
            executor_class("simd")

    def test_in_nest_offset_read_after_assign_rejected(self):
        """The vectorized backend refuses nests that read an array at a
        nonzero offset after assigning it in the same nest — the one
        plan shape where global-array semantics and per-PE semantics
        could diverge.  The compiler never emits it; hand-built plans
        must fall back to the per-PE backend."""
        spec = KERNELS["five_point"]
        compiled = compile_hpf(spec.source, bindings={"N": 8},
                               level="O0", outputs=set(spec.outputs))
        ex = executor_class("vectorized")(
            compiled.plan, Machine(grid=(2, 2)), None, False)
        bad = LoopNestOp(
            statements=[
                NestStmt("A", OffsetRef("B", (0, 0))),
                NestStmt("C", OffsetRef("A", (1, 0))),
            ],
            space=(), stats=LoopStats(points=1))
        with pytest.raises(ExecutionError, match="reads .* after "
                                                 "assigning"):
            ex._check_nest(bad)

    def test_in_nest_zero_offset_read_allowed(self):
        spec = KERNELS["five_point"]
        compiled = compile_hpf(spec.source, bindings={"N": 8},
                               level="O0", outputs=set(spec.outputs))
        ex = executor_class("vectorized")(
            compiled.plan, Machine(grid=(2, 2)), None, False)
        ok = LoopNestOp(
            statements=[
                NestStmt("A", OffsetRef("B", (0, 0))),
                NestStmt("C", OffsetRef("A", (0, 0))),
            ],
            space=(), stats=LoopStats(points=1))
        ex._check_nest(ok)  # must not raise
