"""Full CSHIFT/EOSHIFT runtime vs NumPy semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.types import Distribution
from repro.machine import Machine
from repro.runtime.cshift import full_cshift, full_eoshift
from repro.runtime.darray import DArray
from repro.runtime.distribution import Layout

from tests.conftest import random_grid


def pair(machine, n=8, halo=1):
    lay = Layout((n, n), Distribution.block(2), machine.topology)
    h = ((halo, halo), (halo, halo))
    src = DArray.create(machine, "SRC", lay, np.dtype(np.float64), h)
    dst = DArray.create(machine, "DST", lay, np.dtype(np.float64),
                        ((0, 0), (0, 0)))
    return src, dst


class TestFullCShift:
    @pytest.mark.parametrize("shift,dim", [(1, 1), (-1, 1), (1, 2), (-1, 2)])
    def test_matches_numpy_roll(self, machine2x2, shift, dim):
        src, dst = pair(machine2x2)
        g = random_grid(8, dtype=np.float64)
        src.scatter(g)
        full_cshift(machine2x2, dst, src, shift, dim)
        np.testing.assert_array_equal(
            dst.gather(), np.roll(g, -shift, axis=dim - 1))

    def test_intraprocessor_copy_charged(self, machine2x2):
        src, dst = pair(machine2x2)
        src.scatter(random_grid(8, dtype=np.float64))
        full_cshift(machine2x2, dst, src, 1, 1)
        # every PE copies its 4x4 interior twice: into the private
        # communication buffer and out to the destination
        assert machine2x2.report.copy_elements == 2 * 4 * 16

    def test_message_per_pe(self, machine2x2):
        src, dst = pair(machine2x2)
        src.scatter(random_grid(8, dtype=np.float64))
        full_cshift(machine2x2, dst, src, 1, 2)
        assert machine2x2.report.messages == 4

    def test_shift_two(self, machine2x2):
        src, dst = pair(machine2x2, halo=2)
        g = random_grid(8, dtype=np.float64)
        src.scatter(g)
        full_cshift(machine2x2, dst, src, -2, 2)
        np.testing.assert_array_equal(
            dst.gather(), np.roll(g, 2, axis=1))

    def test_composed_shifts_commute(self, machine2x2):
        # CSHIFT(CSHIFT(g,+1,1),-1,2) == CSHIFT(CSHIFT(g,-1,2),+1,1)
        g = random_grid(8, dtype=np.float64)

        def run(order):
            m = Machine(grid=(2, 2))
            lay = Layout((8, 8), Distribution.block(2), m.topology)
            h = ((1, 1), (1, 1))
            a = DArray.create(m, "A", lay, np.dtype(np.float64), h)
            b = DArray.create(m, "B", lay, np.dtype(np.float64), h)
            c = DArray.create(m, "C", lay, np.dtype(np.float64), h)
            a.scatter(g)
            (s1, d1), (s2, d2) = order
            full_cshift(m, b, a, s1, d1)
            full_cshift(m, c, b, s2, d2)
            return c.gather()

        np.testing.assert_array_equal(
            run(((1, 1), (-1, 2))), run(((-1, 2), (1, 1))))


class TestFullEOShift:
    def _numpy_eoshift(self, a, shift, dim, boundary):
        out = np.full_like(a, boundary)
        axis = dim - 1
        n = a.shape[axis]
        src = [slice(None)] * a.ndim
        dst = [slice(None)] * a.ndim
        if shift > 0:
            dst[axis] = slice(0, n - shift)
            src[axis] = slice(shift, n)
        else:
            dst[axis] = slice(-shift, n)
            src[axis] = slice(0, n + shift)
        out[tuple(dst)] = a[tuple(src)]
        return out

    @pytest.mark.parametrize("shift,dim", [(1, 1), (-1, 2)])
    def test_matches_reference(self, machine2x2, shift, dim):
        src, dst = pair(machine2x2)
        g = random_grid(8, dtype=np.float64)
        src.scatter(g)
        full_eoshift(machine2x2, dst, src, shift, dim, boundary=3.25)
        np.testing.assert_array_equal(
            dst.gather(), self._numpy_eoshift(g, shift, dim, 3.25))


@settings(max_examples=20, deadline=None)
@given(shift=st.sampled_from([-2, -1, 1, 2]),
       dim=st.sampled_from([1, 2]),
       grid=st.sampled_from([(2, 2), (1, 2), (2, 1), (4, 2)]),
       seed=st.integers(0, 5))
def test_cshift_property_any_grid(shift, dim, grid, seed):
    """full_cshift equals np.roll on every grid shape, including 1-wide
    dimensions where the transfer degenerates to a self-copy."""
    n = 8
    m = Machine(grid=grid)
    lay = Layout((n, n), Distribution.block(2), m.topology)
    src = DArray.create(m, "S", lay, np.dtype(np.float64),
                        ((2, 2), (2, 2)))
    dst = DArray.create(m, "D", lay, np.dtype(np.float64),
                        ((0, 0), (0, 0)))
    g = np.random.default_rng(seed).standard_normal((n, n))
    src.scatter(g)
    full_cshift(m, dst, src, shift, dim)
    np.testing.assert_array_equal(dst.gather(), np.roll(g, -shift,
                                                        axis=dim - 1))
