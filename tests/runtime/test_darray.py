"""Distributed array tests: scatter/gather, halos, memory charging."""

import numpy as np
import pytest

from repro.errors import MachineError, SimulatedOutOfMemoryError
from repro.ir.types import Distribution
from repro.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.runtime.darray import DArray
from repro.runtime.distribution import Layout

from tests.conftest import random_grid


def make_darray(machine, n=8, halo=1, name="U", dtype=np.float32):
    lay = Layout((n, n), Distribution.block(2), machine.topology)
    h = tuple(((halo, halo), (halo, halo)))
    return DArray.create(machine, name, lay, np.dtype(dtype), h)


class TestScatterGather:
    def test_roundtrip(self, machine2x2):
        da = make_darray(machine2x2)
        g = random_grid(8)
        da.scatter(g)
        np.testing.assert_array_equal(da.gather(), g)

    def test_gather_starts_zero(self, machine2x2):
        da = make_darray(machine2x2)
        assert not da.gather().any()

    def test_scatter_shape_mismatch(self, machine2x2):
        da = make_darray(machine2x2)
        with pytest.raises(MachineError):
            da.scatter(np.zeros((4, 4), dtype=np.float32))

    def test_uneven_blocks_roundtrip(self):
        m = Machine(grid=(3, 2))
        lay = Layout((10, 7), Distribution.block(2), m.topology)
        da = DArray.create(m, "A", lay, np.dtype(np.float64),
                           ((1, 1), (1, 1)))
        g = np.arange(70, dtype=np.float64).reshape(10, 7)
        da.scatter(g)
        np.testing.assert_array_equal(da.gather(), g)


class TestGeometry:
    def test_interior_shape(self, machine2x2):
        da = make_darray(machine2x2, n=8, halo=2)
        assert da.interior(0).shape == (4, 4)
        assert da.padded(0).shape == (8, 8)

    def test_interior_is_view(self, machine2x2):
        da = make_darray(machine2x2)
        da.interior(0)[...] = 7.0
        assert da.padded(0)[1, 1] == 7.0
        assert da.padded(0)[0, 0] == 0.0  # halo untouched

    def test_local_index_of(self, machine2x2):
        da = make_darray(machine2x2, n=8, halo=1)
        # PE 3 owns (5..8, 5..8); global (5,5) -> padded (1,1)
        assert da.local_index_of(3, (5, 5)) == (1, 1)
        with pytest.raises(Exception):
            da.local_index_of(0, (5, 5))

    def test_halo_exceeding_block_rejected(self, machine2x2):
        with pytest.raises(MachineError):
            make_darray(machine2x2, n=8, halo=5)


class TestMemoryCharging:
    def test_allocation_charged(self, machine2x2):
        make_darray(machine2x2, n=8, halo=1)
        # local (4+2)x(4+2) float32 = 144 bytes
        assert machine2x2.memory.in_use(0) == 144

    def test_free_releases(self, machine2x2):
        da = make_darray(machine2x2)
        da.free(machine2x2)
        assert machine2x2.memory.in_use(0) == 0

    def test_oom_on_small_machine(self):
        m = Machine(grid=(2, 2), memory_per_pe=100)
        with pytest.raises(SimulatedOutOfMemoryError):
            make_darray(m, n=8, halo=1)

    def test_peak_accounts_halo(self, machine2x2):
        make_darray(machine2x2, n=8, halo=2)  # (4+4)^2*4 = 256B
        assert machine2x2.memory.peak(0) == 256
