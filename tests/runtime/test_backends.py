"""The execution-backend registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.kernels import run_kernel
from repro.runtime import backends
from repro.runtime.backends import (
    available_backends, get_backend, register_backend,
)


def test_builtins_resolve_lazily():
    from repro.runtime.executor import _Exec
    from repro.runtime.vectorized import VectorizedExec
    assert get_backend("perpe") is _Exec
    assert get_backend("vectorized") is VectorizedExec


def test_available_backends_lists_builtins():
    names = available_backends()
    assert "perpe" in names and "vectorized" in names
    assert names == sorted(names)


def test_unknown_backend_is_actionable():
    with pytest.raises(ExecutionError, match="perpe"):
        get_backend("simd")


def test_executor_class_delegates_to_registry():
    from repro.runtime.executor import executor_class
    assert executor_class("perpe") is get_backend("perpe")
    with pytest.raises(ExecutionError):
        executor_class("simd")


def test_registered_backend_reaches_run_kernel(monkeypatch):
    from repro.runtime.executor import _Exec

    calls = []

    class SpyExec(_Exec):
        def __init__(self, *a, **kw):
            calls.append("init")
            super().__init__(*a, **kw)

    monkeypatch.setitem(backends._REGISTRY, "spy", SpyExec)
    try:
        ref = run_kernel("five_point", bindings={"N": 8})
        spy = run_kernel("five_point", bindings={"N": 8},
                         backend="spy")
    finally:
        pass  # monkeypatch restores the registry entry
    assert calls
    np.testing.assert_array_equal(ref.arrays["DST"],
                                  spy.arrays["DST"])


def test_registration_overrides_and_lists(monkeypatch):
    sentinel = type("Fake", (), {})
    monkeypatch.setitem(backends._REGISTRY, "fake", sentinel)
    assert get_backend("fake") is sentinel
    assert "fake" in available_backends()


def test_parallel_is_a_builtin():
    from repro.runtime.parallel import ParallelExec
    assert get_backend("parallel") is ParallelExec
    assert "parallel" in available_backends()


def test_user_registration_shadows_builtin():
    """register_backend over a builtin name wins — an explicit entry in
    the registry takes precedence over lazy builtin resolution — and
    unregistering restores the builtin, not a dead name."""
    from repro.runtime.executor import _Exec

    class Shadow(_Exec):
        pass

    assert get_backend("perpe") is _Exec  # builtin resolved (and cached)
    register_backend("perpe", Shadow)
    try:
        assert get_backend("perpe") is Shadow
        assert available_backends().count("perpe") == 1
    finally:
        register_backend("perpe", _Exec)
    assert get_backend("perpe") is _Exec
