"""Differential fuzzing of the compiled backend's code generator.

Hypothesis drives random programs from the full generator subset —
CSHIFT/EOSHIFT chains, WHERE masks, reductions feeding later scalars,
accumulation chains, intrinsics — through
:func:`repro.testing.backend_equivalence_check` with the compiled
backend in the sweep, across random tile and unroll-and-jam factors.
Every example demands bitwise arrays/scalars, an identical modelled
cost report, an identical tagged message log, and an identical
communication profile against the per-PE baseline; programs whose
nests cannot be lowered bitwise-safely exercise the per-nest slab
fallback inside the same check.

Settings mirror the ``ci`` hypothesis profile: ``deadline=None`` and
``derandomize=True`` so CI failures replay identically.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen import codegen_options
from repro.testing import (
    GeneratorConfig, backend_equivalence_check, preferred_test_jit,
    random_inputs, random_program,
)

pytestmark = pytest.mark.compiled

FUZZ = settings(deadline=None, derandomize=True,
                suppress_health_check=[HealthCheck.too_slow])

COMPILED_SWEEP = (("perpe", {}), ("compiled", {}))

tile_st = st.sampled_from((0, 3, 8))
unroll_st = st.sampled_from((0, 2, 4))


@settings(max_examples=10, parent=FUZZ)
@given(seed=st.integers(0, 10_000), tile=tile_st, unroll=unroll_st)
def test_random_programs_any_factors(seed, tile, unroll):
    prog = random_program(seed)
    with codegen_options(jit=preferred_test_jit(), tile=tile,
                         unroll=unroll):
        backend_equivalence_check(prog, random_inputs(seed, prog),
                                  levels=("O0", "O4"),
                                  backends=COMPILED_SWEEP)


@settings(max_examples=6, parent=FUZZ)
@given(seed=st.integers(0, 10_000), tile=tile_st)
def test_collapsed_dim_3d(seed, tile):
    cfg = GeneratorConfig(ndim=3, n=8, n_statements=3,
                          allow_where=False)
    prog = random_program(seed, cfg)
    with codegen_options(jit=preferred_test_jit(), tile=tile,
                         unroll=2):
        backend_equivalence_check(prog, random_inputs(seed, prog, cfg),
                                  levels=("O4",),
                                  backends=COMPILED_SWEEP)


@settings(max_examples=6, parent=FUZZ)
@given(seed=st.integers(0, 10_000), unroll=unroll_st)
def test_eoshift_boundaries(seed, unroll):
    cfg = GeneratorConfig(n=16, max_offset=3, n_statements=5,
                          eoshift_boundary=-1.25)
    prog = random_program(seed, cfg)
    with codegen_options(jit=preferred_test_jit(), unroll=unroll):
        backend_equivalence_check(prog, random_inputs(seed, prog, cfg),
                                  levels=("O1", "O3"),
                                  backends=COMPILED_SWEEP)


@settings(max_examples=5, parent=FUZZ)
@given(seed=st.integers(0, 10_000))
def test_multi_iteration_runs(seed):
    prog = random_program(seed)
    with codegen_options(jit=preferred_test_jit(), tile=5, unroll=3):
        backend_equivalence_check(prog, random_inputs(seed, prog),
                                  levels=("O4",), iterations=3,
                                  backends=COMPILED_SWEEP)
