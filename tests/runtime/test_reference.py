"""Serial reference evaluator tests — the oracle must itself be right.

Cross-checked against hand-written NumPy for every construct.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.frontend import parse_program
from repro.runtime.reference import _eoshift, _roll, evaluate


def grid(n=8, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n, n)).astype(np.float32)


class TestShiftPrimitives:
    @given(shift=st.integers(-3, 3).filter(bool),
           dim=st.integers(1, 2), seed=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_roll_is_fortran_cshift(self, shift, dim, seed):
        a = np.random.default_rng(seed).standard_normal((6, 6))
        out = _roll(a, shift, dim)
        # Fortran: result(i) = a(1 + MODULO(i-1+shift, n)) along dim
        for i in range(6):
            for j in range(6):
                si = (i + shift) % 6 if dim == 1 else i
                sj = (j + shift) % 6 if dim == 2 else j
                assert out[i, j] == a[si, sj]

    @given(shift=st.integers(-7, 7).filter(bool), seed=st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_eoshift_boundary_fill(self, shift, seed):
        a = np.random.default_rng(seed).standard_normal((6, 6))
        out = _eoshift(a, shift, 1, boundary=9.0)
        for i in range(6):
            src = i + shift
            if 0 <= src < 6:
                assert (out[i] == a[src]).all()
            else:
                assert (out[i] == 9.0).all()

    def test_eoshift_full_offshift(self):
        a = np.ones((4, 4))
        assert (_eoshift(a, 4, 1, 7.0) == 7.0).all()
        assert (_eoshift(a, -5, 2, 7.0) == 7.0).all()


class TestEvaluate:
    def test_inputs_case_insensitive(self):
        p = parse_program("REAL A(8,8), B(8,8)\nA = B")
        b = grid()
        out = evaluate(p, inputs={"b": b})
        np.testing.assert_array_equal(out["A"], b)

    def test_missing_inputs_zeroed(self):
        p = parse_program("REAL A(8,8), B(8,8)\nA = B + 1")
        assert (evaluate(p)["A"] == 1).all()

    def test_wrong_shape_input(self):
        p = parse_program("REAL A(8,8)\nA = A")
        with pytest.raises(ExecutionError):
            evaluate(p, inputs={"A": np.zeros((4, 4))})

    def test_dtype_conversion(self):
        p = parse_program("REAL A(4,4)\nA = A * 2.0")
        out = evaluate(p, inputs={"A": np.ones((4, 4), np.float64)})
        assert out["A"].dtype == np.float32

    def test_sections(self):
        p = parse_program("REAL A(8,8)\nA(2:7,3:6) = 5.0")
        a = evaluate(p)["A"]
        assert (a[1:7, 2:6] == 5).all()
        assert a.sum() == 5 * 6 * 4

    def test_section_offsets_semantics(self):
        p = parse_program("""
        REAL A(8,8), B(8,8)
        A(2:7,2:7) = B(1:6,2:7)
        """)
        b = grid()
        a = evaluate(p, inputs={"B": b})["A"]
        np.testing.assert_array_equal(a[1:7, 1:7], b[0:6, 1:7])

    def test_scalar_binding(self):
        p = parse_program("REAL A(4,4)\nA = A + C")
        out = evaluate(p, inputs={"A": np.ones((4, 4))},
                       scalars={"c": 2.5})
        assert (out["A"] == 3.5).all()

    def test_scalar_chain(self):
        p = parse_program("""
        REAL A(4,4)
        X = 2.0
        Y = X * 3.0
        A = A + Y
        """)
        assert (evaluate(p)["A"] == 6.0).all()

    def test_param_in_expression(self):
        p = parse_program("PARAMETER (N = 4)\nREAL A(N,N)\nA = A + N")
        assert (evaluate(p)["A"] == 4).all()


class TestControlFlowSemantics:
    def test_if_on_scalar(self):
        p = parse_program("""
        REAL A(4,4)
        X = 2.0
        IF (X > 1) THEN
          A = 1.0
        ELSE
          A = -1.0
        ENDIF
        """)
        assert (evaluate(p)["A"] == 1.0).all()

    def test_do_loop_accumulates(self):
        p = parse_program("""
        REAL A(4,4)
        DO K = 1, 5
          A = A + 1.0
        ENDDO
        """)
        assert (evaluate(p)["A"] == 5.0).all()

    def test_loop_variable_visible(self):
        p = parse_program("""
        REAL A(4,4)
        DO K = 1, 3
          A = A + K
        ENDDO
        """)
        assert (evaluate(p)["A"] == 6.0).all()  # 1+2+3

    def test_do_while(self):
        p = parse_program("""
        REAL A(4,4)
        S = 4.0
        DO WHILE (S > 1.0)
          A = A + 1.0
          S = S / 2.0
        ENDDO
        """)
        assert (evaluate(p)["A"] == 2.0).all()

    def test_symbolic_loop_bounds(self):
        p = parse_program("""
        REAL A(4,4)
        DO K = 1, M
          A = A + 1.0
        ENDDO
        """, bindings={"N": 4, "M": 7})
        assert (evaluate(p)["A"] == 7.0).all()


class TestAllocation:
    def test_allocate_zeroes(self):
        p = parse_program("""
        REAL A(4,4)
        REAL, ALLOCATABLE :: T(:,:)
        ALLOCATE(T(4,4))
        T = 3.0
        A = T
        DEALLOCATE(T)
        ALLOCATE(T(4,4))
        A = A + T
        DEALLOCATE(T)
        """)
        assert (evaluate(p)["A"] == 3.0).all()  # fresh T is zero


class TestTransformedPrograms:
    """The oracle must evaluate post-pass IR (OffsetRef, OverlapShift)."""

    def test_offset_ref_circular(self):
        from repro.passes.normalize import NormalizePass
        from repro.passes.offset_arrays import OffsetArrayPass
        src = """
        REAL A(8,8), B(8,8)
        A = CSHIFT(B,SHIFT=1,DIM=1)
        C = 0.0
        """
        p = parse_program(src)
        before = evaluate(p, inputs={"B": grid(seed=1)})["A"]
        p2 = parse_program(src)
        NormalizePass().run(p2)
        OffsetArrayPass(outputs={"A"}).run(p2)
        after = evaluate(p2, inputs={"B": grid(seed=1)})["A"]
        np.testing.assert_array_equal(before, after)

    def test_eoshift_offset_ref(self):
        from repro.ir.nodes import ArrayAssign, ArrayRef, OffsetRef
        p = parse_program("REAL A(8,8), B(8,8)\nA = B")
        p.body[0] = ArrayAssign(ArrayRef("A"),
                                OffsetRef("B", (1, 0), boundary=5.0))
        b = grid(seed=2)
        a = evaluate(p, inputs={"B": b})["A"]
        np.testing.assert_array_equal(a[:-1], b[1:])
        assert (a[-1] == 5.0).all()
