"""Zero-width-slab elision in the shift runtimes.

:meth:`Network.send`/:meth:`Network.record` reject zero-size messages by
contract, so the shift runtimes must elide degenerate slabs *at the call
site*.  BLOCK layouts reject empty blocks at construction, so today a
zero-extent local shape is only reachable through hand-built layouts —
but future distribution kinds can produce them legitimately, and before
the elision guards ``overlap_shift``/``full_cshift`` crashed with
``MachineError: zero-size message`` instead of doing nothing.

Two angles: (1) a layout proxy that reports a zero local extent along
the orthogonal dimension reproduces the old crash path and must now be a
no-op; (2) a spy over every transfer entry point proves the real
tiny-grid sweeps (where blocks shrink to single cells) never attempt a
zero-size transfer on any backend.
"""

import numpy as np
import pytest

from repro.ir.types import DistKind, Distribution
from repro.kernels import KERNELS, compile_kernel
from repro.machine import Machine
from repro.machine.network import Network
from repro.runtime.cshift import full_cshift, full_eoshift
from repro.runtime.darray import DArray
from repro.runtime.distribution import Layout
from repro.runtime.overlap import overlap_shift


class _ZeroOrthoLayout:
    """Proxy layout reporting a zero local extent along one dimension on
    every PE — the degenerate geometry a future distribution kind (e.g.
    a general BLOCK(k)) could produce."""

    def __init__(self, inner, dim):
        self._inner = inner
        self._dim = dim

    def local_shape(self, pe):
        shape = self._inner.local_shape(pe)
        return tuple(0 if k == self._dim else n
                     for k, n in enumerate(shape))

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _degenerate_array(machine, dim):
    lay = Layout((8, 8), Distribution.block(2), machine.topology)
    da = DArray.create(machine, "U", lay, np.dtype(np.float64),
                       ((1, 1), (1, 1)))
    da.layout = _ZeroOrthoLayout(lay, dim)
    return da


class TestElision:
    """Before the call-site guards these raised ``MachineError:
    zero-size message`` out of ``Network.send``."""

    @pytest.mark.parametrize("shift", [+1, -1])
    def test_overlap_shift_elides_empty_slabs(self, shift):
        machine = Machine(grid=(2, 2), keep_message_log=True)
        da = _degenerate_array(machine, dim=1)  # ortho to a dim-1 shift
        overlap_shift(machine, da, shift=shift, dim=1)
        assert machine.network.message_count == 0
        assert machine.network.log == []

    def test_overlap_shift_collapsed_dim_elides(self):
        machine = Machine(grid=(4,), keep_message_log=True)
        lay = Layout((8, 8),
                     Distribution((DistKind.BLOCK, DistKind.COLLAPSED)),
                     machine.topology)
        da = DArray.create(machine, "U", lay, np.dtype(np.float64),
                           ((1, 1), (1, 1)))
        da.layout = _ZeroOrthoLayout(lay, 0)
        copies_before = machine.report.copies
        overlap_shift(machine, da, shift=+1, dim=2)  # collapsed dim
        assert machine.report.copies == copies_before

    def test_full_cshift_elides_empty_blocks(self):
        machine = Machine(grid=(2, 2), keep_message_log=True)
        src = _degenerate_array(machine, dim=1)
        lay = Layout((8, 8), Distribution.block(2), machine.topology)
        dst = DArray.create(machine, "V", lay, np.dtype(np.float64),
                            ((0, 0), (0, 0)))
        dst.layout = src.layout
        full_cshift(machine, dst, src, shift=+1, dim=1)
        assert machine.network.message_count == 0
        assert machine.report.copies == 0

    def test_full_eoshift_elides_empty_blocks(self):
        machine = Machine(grid=(2, 2), keep_message_log=True)
        src = _degenerate_array(machine, dim=0)
        lay = Layout((8, 8), Distribution.block(2), machine.topology)
        dst = DArray.create(machine, "V", lay, np.dtype(np.float64),
                            ((0, 0), (0, 0)))
        dst.layout = src.layout
        full_eoshift(machine, dst, src, shift=-1, dim=2, boundary=0.5)
        assert machine.network.message_count == 0
        assert machine.report.copies == 0


TINY = [
    # name, N, grid: local blocks shrink to single cells/rows
    ("five_point", 4, (4, 1)),
    ("five_point", 4, (1, 4)),
    ("nine_point", 4, (4, 1)),
    ("nine_point", 4, (1, 4)),
    ("purdue9", 4, (4, 1)),
    ("purdue9", 4, (4, 4)),
    ("nine_point_cshift", 4, (4, 4)),
    ("twentyfive_point", 8, (4, 1)),
]


class _TransferSpy:
    """Wraps every transfer entry point, recording element counts."""

    def __init__(self, monkeypatch):
        self.sizes = []
        spy = self
        real_send = Network.send
        real_record = Network.record

        def send(net, src, dst, payload, tag=""):
            spy.sizes.append(int(np.asarray(payload).size))
            return real_send(net, src, dst, payload, tag=tag)

        def record(net, src, dst, nelems, itemsize, tag=""):
            spy.sizes.append(int(nelems))
            return real_record(net, src, dst, nelems, itemsize, tag=tag)

        monkeypatch.setattr(Network, "send", send)
        monkeypatch.setattr(Network, "record", record)


class TestTinyGrids:
    """Minimal blocks on every backend: all three backends bitwise-agree
    and never attempt a zero-size transfer."""

    @pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3", "O4"])
    @pytest.mark.parametrize("name,n,grid", TINY)
    def test_tiny_grid_sweep(self, name, n, grid, level, monkeypatch):
        spy = _TransferSpy(monkeypatch)
        compiled = compile_kernel(name, bindings={"N": n}, level=level)
        rng = np.random.default_rng(11)
        inputs = {
            arr: rng.standard_normal(decl.shape).astype(decl.dtype)
            for arr, decl in compiled.plan.arrays.items()
            if arr in compiled.plan.entry_arrays}
        results = {}
        for backend, workers in (("perpe", None), ("vectorized", None),
                                 ("parallel", 2)):
            machine = Machine(grid=grid, keep_message_log=False)
            results[backend] = compiled.run(
                machine, inputs=inputs, backend=backend, workers=workers)
        base = results["perpe"]
        for backend in ("vectorized", "parallel"):
            other = results[backend]
            for arr in KERNELS[name].outputs:
                np.testing.assert_array_equal(
                    base.arrays[arr], other.arrays[arr],
                    err_msg=f"{name} N={n} {grid} {level} {backend}")
            assert base.report.summary() == other.report.summary()
        assert min(spy.sizes, default=1) > 0
