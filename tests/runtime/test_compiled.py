"""The compiled backend's contract: bitwise identity with every other
backend on every observable, across the §3.4 transform space, plus the
graceful-degradation ladder (missing numba) and kernel-cache reuse.

These tests run the *generated* kernels under ``jit="python"`` when
numba is absent — that executes the identical statements numba would
compile, so codegen is exercised either way; under numba they run
native.
"""

import numpy as np
import pytest

from repro.codegen import cache as kcache
from repro.codegen import codegen_options
from repro.compiler import compile_hpf
from repro.errors import UsageError
from repro.kernels import KERNELS, run_kernel
from repro.machine import Machine
from repro.runtime import compiled as compiled_mod
from repro.runtime.backends import get_backend
from repro.testing import preferred_test_jit

SMALL_N = {"five_point": 12, "nine_point_cshift": 12, "nine_point": 12,
           "purdue9": 12, "twentyfive_point": 16, "seven_point_3d": 8,
           "box27_3d": 8, "jacobi": 12, "red_black": 12, "cg": 12}

JIT = preferred_test_jit()


def _run(name, backend, level="O4", grid=(2, 2), iterations=2,
         **codegen):
    machine = Machine(grid=grid, keep_message_log=True)
    if backend == "compiled":
        with codegen_options(jit=JIT, **codegen):
            res = run_kernel(name, bindings={"N": SMALL_N[name]},
                             level=level, backend=backend,
                             machine=machine, iterations=iterations,
                             seed=1, profile=True)
    else:
        res = run_kernel(name, bindings={"N": SMALL_N[name]},
                         level=level, backend=backend, machine=machine,
                         iterations=iterations, seed=1, profile=True)
    log = [(m.src, m.dst, m.nbytes, m.tag)
           for m in machine.network.log]
    return res, log


def _assert_identical(a, alog, b, blog, ctx=""):
    assert set(a.arrays) == set(b.arrays)
    for arr in a.arrays:
        np.testing.assert_array_equal(
            a.arrays[arr].view(np.uint8), b.arrays[arr].view(np.uint8),
            err_msg=f"{ctx} array {arr}")
    assert a.scalars == b.scalars, ctx
    assert a.report.summary() == b.report.summary(), ctx
    assert a.report.pe_times == b.report.pe_times, ctx
    assert a.report.pe_comm_times == b.report.pe_comm_times, ctx
    assert a.report.pe_copy_times == b.report.pe_copy_times, ctx
    assert a.peak_memory_per_pe == b.peak_memory_per_pe, ctx
    assert alog == blog, f"{ctx} message logs diverged"
    assert a.profile.matrix == b.profile.matrix, ctx
    assert a.profile.totals["messages_by_class"] == \
        b.profile.totals["messages_by_class"], ctx


class TestNamedKernels:
    @pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3", "O4"])
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_bitwise_identical_to_perpe(self, name, level):
        a, alog = _run(name, "perpe", level=level)
        b, blog = _run(name, "compiled", level=level)
        _assert_identical(a, alog, b, blog, f"{name} {level}")

    @pytest.mark.parametrize("grid", [(4, 1), (1, 4), (3, 2)])
    def test_asymmetric_grids(self, grid):
        for name in ("nine_point", "purdue9", "seven_point_3d"):
            a, alog = _run(name, "vectorized", grid=grid)
            b, blog = _run(name, "compiled", grid=grid)
            _assert_identical(a, alog, b, blog, f"{name} {grid}")


class TestTransformSweep:
    """Tiling and unroll-and-jam reorder the *iteration* schedule, never
    the arithmetic: every factor combination must stay bitwise."""

    @pytest.mark.parametrize("tile,unroll",
                             [(0, 1), (3, 1), (8, 2), (5, 3), (16, 4)])
    @pytest.mark.parametrize("name", ["nine_point", "seven_point_3d"])
    def test_factors_bitwise(self, name, tile, unroll):
        a, alog = _run(name, "perpe")
        b, blog = _run(name, "compiled", tile=tile, unroll=unroll)
        _assert_identical(a, alog, b, blog,
                          f"{name} tile={tile} unroll={unroll}")

    def test_tile_larger_than_subgrid(self):
        a, alog = _run("five_point", "perpe")
        b, blog = _run("five_point", "compiled", tile=100, unroll=7)
        _assert_identical(a, alog, b, blog, "oversized factors")


class TestDegradation:
    def _plan(self):
        spec = KERNELS["five_point"]
        return compile_hpf(spec.source, bindings={"N": 12}, level="O2",
                           outputs=set(spec.outputs)).plan

    def test_auto_without_numba_warns_once_and_runs_slabs(self,
                                                          monkeypatch):
        from repro.codegen import jit as jit_mod
        monkeypatch.setattr(jit_mod, "numba_available", lambda: False)
        monkeypatch.setattr(compiled_mod, "_warned_no_numba", False)
        cls = get_backend("compiled")
        plan = self._plan()
        with codegen_options(jit="auto"):
            with pytest.warns(RuntimeWarning, match="numba is not"):
                ex = cls(plan, Machine(grid=(2, 2)), None, False)
            assert ex.jit_mode == "off"
            assert not ex._kernels
            # second construction must not warn again
            import warnings as _w
            with _w.catch_warnings():
                _w.simplefilter("error")
                cls(plan, Machine(grid=(2, 2)), None, False)

    def test_auto_without_numba_results_identical(self, monkeypatch):
        from repro.codegen import jit as jit_mod
        monkeypatch.setattr(jit_mod, "numba_available", lambda: False)
        monkeypatch.setattr(compiled_mod, "_warned_no_numba", True)
        a, alog = _run("nine_point", "vectorized")
        machine = Machine(grid=(2, 2), keep_message_log=True)
        with codegen_options(jit="auto"):
            b = run_kernel("nine_point", bindings={"N": 12}, level="O4",
                           backend="compiled", machine=machine,
                           iterations=2, seed=1, profile=True)
        blog = [(m.src, m.dst, m.nbytes, m.tag)
                for m in machine.network.log]
        _assert_identical(a, alog, b, blog, "slab degradation")

    def test_jit_numba_without_numba_raises(self, monkeypatch):
        from repro.codegen import jit as jit_mod
        monkeypatch.setattr(jit_mod, "numba_available", lambda: False)
        cls = get_backend("compiled")
        with codegen_options(jit="numba"):
            with pytest.raises(UsageError, match="numba is not"):
                cls(self._plan(), Machine(grid=(2, 2)), None, False)

    def test_jit_off_runs_no_kernels(self):
        cls = get_backend("compiled")
        with codegen_options(jit="off"):
            ex = cls(self._plan(), Machine(grid=(2, 2)), None, False)
        assert ex.jit_mode == "off"
        assert not ex._kernels


class TestPerNestFallback:
    SRC = ("      REAL, DIMENSION(N,N) :: A, B, C\n"
           "!HPF$ DISTRIBUTE A(BLOCK,BLOCK)\n"
           "!HPF$ ALIGN B WITH A\n"
           "!HPF$ ALIGN C WITH A\n"
           "      DO KK = 1, 2\n"
           "        B = LOG(A) * 0.5 + B\n"
           "      ENDDO\n"
           "      DO KK = 1, 2\n"
           "        C = 0.25 * CSHIFT(A, SHIFT=1, DIM=2)\n"
           "      ENDDO\n")

    def test_unloweable_nest_runs_as_slabs_rest_native(self):
        compiled = compile_hpf(self.SRC, bindings={"N": 12}, level="O0",
                               outputs={"B", "C"})
        rng = np.random.default_rng(5)
        inputs = {"A": rng.uniform(0.5, 2.0, (12, 12)).astype(
            np.float32)}
        results = {}
        for backend in ("perpe", "compiled"):
            machine = Machine(grid=(2, 2))
            with codegen_options(jit=JIT):
                results[backend] = compiled.run(
                    machine, inputs=inputs, backend=backend)
        a, b = results["perpe"], results["compiled"]
        for name in ("B", "C"):
            np.testing.assert_array_equal(a.arrays[name],
                                          b.arrays[name])
        assert a.report.summary() == b.report.summary()

    def test_kernel_for_reports_fallback(self):
        from repro.codegen.lower import plan_nests
        compiled = compile_hpf(self.SRC, bindings={"N": 12}, level="O0",
                               outputs={"B", "C"})
        cls = get_backend("compiled")
        with codegen_options(jit=JIT):
            ex = cls(compiled.plan, Machine(grid=(2, 2)), None, False)
        kernels = [ex.kernel_for(op)
                   for op in plan_nests(compiled.plan)]
        assert None in kernels, "LOG nest should have fallen back"
        assert any(k is not None for k in kernels), (
            "the CSHIFT nest should have lowered")


class TestKernelReuse:
    def test_in_process_cache_hits_on_second_run(self):
        kcache.clear_modules()
        h0 = kcache.MEMORY_STATS.hits
        _run("five_point", "compiled", level="O2", iterations=1)
        _run("five_point", "compiled", level="O2", iterations=1)
        assert kcache.MEMORY_STATS.hits > h0

    def test_disk_cache_round_trip(self, tmp_path):
        kcache.clear_modules()
        machine = Machine(grid=(2, 2))
        with codegen_options(jit=JIT, cache_dir=str(tmp_path)):
            a = run_kernel("five_point", bindings={"N": 12}, level="O2",
                           backend="compiled", machine=machine, seed=1)
        files = list(tmp_path.glob("*.py"))
        assert len(files) == 1, "kernel source not persisted"
        # a fresh process (modules cleared) must revive from disk and
        # produce identical results without re-lowering
        kcache.clear_modules()
        with codegen_options(jit=JIT, cache_dir=str(tmp_path)):
            b = run_kernel("five_point", bindings={"N": 12}, level="O2",
                           backend="compiled",
                           machine=Machine(grid=(2, 2)), seed=1)
        np.testing.assert_array_equal(a.arrays["DST"], b.arrays["DST"])
        assert len(list(tmp_path.glob("*.py"))) == 1
        assert not list(tmp_path.glob("*.tmp"))

    def test_factor_change_is_a_different_kernel(self, tmp_path):
        kcache.clear_modules()
        for unroll in (1, 2):
            with codegen_options(jit=JIT, unroll=unroll,
                                 cache_dir=str(tmp_path)):
                run_kernel("five_point", bindings={"N": 12}, level="O2",
                           backend="compiled",
                           machine=Machine(grid=(2, 2)), seed=1)
        assert len(list(tmp_path.glob("*.py"))) == 2


class TestCLI:
    @pytest.fixture
    def kernel_file(self, tmp_path):
        path = tmp_path / "k.f90"
        path.write_text(KERNELS["five_point"].source)
        return str(path)

    def test_run_backend_compiled(self, kernel_file, capsys):
        from repro.__main__ import main
        assert main(["run", kernel_file, "--bind", "N=12",
                     "--output", "DST", "--backend", "compiled",
                     "--jit", JIT, "--tile", "4", "--unroll", "2"]) == 0
        assert "DST" in capsys.readouterr().out

    def test_run_rejects_bad_workers(self, kernel_file):
        from repro.__main__ import main
        for bad in ("0", "-3", "two"):
            with pytest.raises(SystemExit) as exc:
                main(["run", kernel_file, "--bind", "N=12",
                      "--output", "DST", "--workers", bad])
            assert exc.value.code == 2

    def test_run_rejects_bad_tile(self, kernel_file, capsys):
        from repro.__main__ import main
        assert main(["run", kernel_file, "--bind", "N=12",
                     "--output", "DST", "--backend", "compiled",
                     "--tile", "-1"]) == 1
        assert "tile" in capsys.readouterr().err
