"""Executor tests: plan-op behaviour, SPMD bounds, error handling."""

import numpy as np
import pytest

from repro import kernels
from repro.compiler import compile_hpf
from repro.errors import ExecutionError, SimulatedOutOfMemoryError
from repro.machine import Machine
from repro.runtime.executor import execute


def compiled_p9(level="O4", n=16):
    return compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": n},
                       level=level, outputs={"T"})


class TestInputs:
    def test_case_insensitive_inputs(self):
        cp = compiled_p9()
        u = np.ones((16, 16), np.float32)
        res = cp.run(Machine(grid=(2, 2)), inputs={"u": u})
        assert res.arrays["T"][0, 0] == 9.0

    def test_missing_inputs_zeroed(self):
        cp = compiled_p9()
        res = cp.run(Machine(grid=(2, 2)))
        assert not res.arrays["T"].any()

    def test_wrong_shape_rejected(self):
        cp = compiled_p9()
        with pytest.raises(Exception):
            cp.run(Machine(grid=(2, 2)),
                   inputs={"U": np.zeros((4, 4), np.float32)})

    def test_scalars_resolved(self):
        cp = compile_hpf(kernels.FIVE_POINT_ARRAY_SYNTAX,
                         bindings={"N": 16}, level="O4", outputs={"DST"})
        u = np.ones((16, 16), np.float32)
        res = cp.run(Machine(grid=(2, 2)), inputs={"SRC": u},
                     scalars={"c1": 1, "C2": 1, "C3": 1, "C4": 1, "C5": 1})
        assert res.arrays["DST"][5, 5] == 5.0

    def test_unset_scalars_default_zero(self):
        cp = compile_hpf(kernels.FIVE_POINT_ARRAY_SYNTAX,
                         bindings={"N": 16}, level="O4", outputs={"DST"})
        res = cp.run(Machine(grid=(2, 2)),
                     inputs={"SRC": np.ones((16, 16), np.float32)})
        assert not res.arrays["DST"].any()


class TestCostAccounting:
    def test_report_messages(self):
        cp = compiled_p9(level="O3")
        res = cp.run(Machine(grid=(2, 2)))
        assert res.report.messages == 16
        assert res.report.copies == 0

    def test_o0_copies_charged(self):
        cp = compiled_p9(level="O0")
        res = cp.run(Machine(grid=(2, 2)))
        # 8 full shifts x 4 PEs x (buffer-in + shifted-out) copies
        assert res.report.copies == 64
        assert res.report.copy_elements == 64 * 64

    def test_loop_points_counted(self):
        cp = compiled_p9(level="O4")
        res = cp.run(Machine(grid=(2, 2)))
        assert res.report.loop_points == 16 * 16

    def test_iterations_scale_costs(self):
        cp = compiled_p9(level="O4")
        r1 = cp.run(Machine(grid=(2, 2)), iterations=1)
        r3 = cp.run(Machine(grid=(2, 2)), iterations=3)
        assert r3.report.messages == 3 * r1.report.messages
        assert r3.modelled_time == pytest.approx(3 * r1.modelled_time)

    def test_pe_times_balanced_even_blocks(self):
        cp = compiled_p9(level="O4")
        res = cp.run(Machine(grid=(2, 2)))
        times = res.report.pe_times
        assert max(times) == pytest.approx(min(times))

    def test_modelled_time_monotone_in_level(self):
        times = []
        for level in ("O0", "O1", "O2", "O3", "O4"):
            res = compiled_p9(level=level, n=64).run(Machine(grid=(2, 2)))
            times.append(res.modelled_time)
        assert times == sorted(times, reverse=True)


class TestMemoryBehaviour:
    def test_oom_propagates(self):
        cp = compiled_p9(level="O0", n=64)
        with pytest.raises(SimulatedOutOfMemoryError):
            cp.run(Machine(grid=(2, 2), memory_per_pe=8 * 1024))

    def test_peak_memory_reported(self):
        cp = compiled_p9(level="O4", n=16)
        res = cp.run(Machine(grid=(2, 2)))
        # U with halo (10x10) + T (8x8) per PE, float32
        assert res.peak_memory_per_pe == (10 * 10 + 8 * 8) * 4

    def test_all_memory_released_after_run(self):
        cp = compiled_p9(level="O0", n=16)
        machine = Machine(grid=(2, 2))
        cp.run(machine)
        assert machine.memory.live_blocks(0) == {}
        assert machine.memory.peak(0) > 0


class TestSPMDBounds:
    def test_interior_space_partial_pes(self):
        # with a 4x1 grid and space 2:15, the edge PEs compute 3 rows
        cp = compile_hpf(kernels.FIVE_POINT_ARRAY_SYNTAX,
                         bindings={"N": 16}, level="O4", outputs={"DST"})
        machine = Machine(grid=(4, 1))
        u = np.random.default_rng(0).standard_normal(
            (16, 16)).astype(np.float32)
        res = cp.run(machine, inputs={"SRC": u},
                     scalars={f"C{i}": 1.0 for i in range(1, 6)})
        assert res.report.loop_points == 14 * 14

    def test_empty_intersection_skipped(self):
        src = """
        REAL A(16,16)
        A(1:4,1:16) = 7
        """
        cp = compile_hpf(src, level="O4", outputs={"A"})
        res = cp.run(Machine(grid=(4, 1)))
        # only PE row 0 owns rows 1..4
        assert res.report.loop_points == 4 * 16
        assert (res.arrays["A"][:4] == 7).all()
        assert not res.arrays["A"][4:].any()


class TestReset:
    def test_machine_reset_between_runs(self):
        cp = compiled_p9()
        machine = Machine(grid=(2, 2))
        cp.run(machine)
        first = machine.report.messages
        cp.run(machine)
        assert machine.report.messages == first  # reset, not accumulated

    def test_no_reset_accumulates(self):
        cp = compiled_p9()
        machine = Machine(grid=(2, 2))
        execute(cp.plan, machine)
        first = int(machine.report.messages)
        execute(cp.plan, machine, reset_machine=False)
        assert machine.report.messages == 2 * first
