"""Differential fuzzing of the true-SPMD parallel backend.

Hypothesis drives random kernel programs — shift offsets, reductions
feeding later statements, WHERE masks, DO WHILE loops with data-derived
bounds — through :func:`repro.testing.backend_equivalence_check` across
worker counts (1, 2, 3, and the auto default) and asymmetric processor
grids.  Every example demands the full three-backend contract: bitwise
arrays/scalars, identical modelled cost report, identical seq-spliced
message log, identical communication profile.

Settings mirror the ``ci`` hypothesis profile (tests/conftest.py):
``deadline=None`` (worker-pool spawns dwarf any deadline) and
``derandomize=True`` so CI failures replay identically; on a red run CI
uploads the ``.hypothesis`` example database as an artifact.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.testing import (
    GeneratedProgram, GeneratorConfig, backend_equivalence_check,
    equivalence_backends, random_inputs, random_program,
)

pytestmark = pytest.mark.parallel

FUZZ = settings(deadline=None, derandomize=True,
                suppress_health_check=[HealthCheck.too_slow])

#: Worker counts the ownership split must be invariant under: one
#: worker owning everything, an even split, an uneven split on a 4-PE
#: grid, and the backend's own ``min(cpu_count, npes)`` default.
WORKER_COUNTS = (1, 2, 3, None)

workers_st = st.sampled_from(WORKER_COUNTS)


@settings(max_examples=8, parent=FUZZ)
@given(seed=st.integers(0, 10_000), workers=workers_st)
def test_random_programs_any_worker_count(seed, workers):
    prog = random_program(seed)
    backend_equivalence_check(prog, random_inputs(seed, prog),
                              levels=("O0", "O4"),
                              backends=equivalence_backends((workers,)))


@settings(max_examples=6, parent=FUZZ)
@given(seed=st.integers(0, 10_000),
       max_offset=st.integers(1, 3),
       workers=workers_st)
def test_offset_heavy_programs(seed, max_offset, workers):
    """Wider shift offsets widen halos and change the message schedule;
    the ownership split must not perturb any of it."""
    cfg = GeneratorConfig(max_offset=max_offset, allow_where=False,
                          n_statements=4)
    prog = random_program(seed, cfg)
    backend_equivalence_check(prog, random_inputs(seed, prog, cfg),
                              levels=("O2",),
                              backends=equivalence_backends((workers,)))


@settings(max_examples=6, parent=FUZZ)
@given(seed=st.integers(0, 10_000), workers=workers_st)
def test_reduction_heavy_programs(seed, workers):
    """Reductions exercise the collective channel: partials fold in PE
    order, results broadcast-verify, every backend logs the same
    allreduce butterfly messages."""
    cfg = GeneratorConfig(n_statements=8, allow_eoshift=False,
                          allow_do_loop=False)
    prog = random_program(seed, cfg)
    backend_equivalence_check(prog, random_inputs(seed, prog, cfg),
                              levels=("O0", "O4"),
                              backends=equivalence_backends((workers,)))


@settings(max_examples=6, parent=FUZZ)
@given(seed=st.integers(0, 10_000),
       grid=st.sampled_from([(4, 1), (1, 4), (3, 2), (2, 3)]),
       workers=workers_st)
def test_asymmetric_grids(seed, grid, workers):
    """Non-square grids make the round-robin ownership split uneven
    (6 PEs on 4 workers, 4 PEs on 3 workers, ...)."""
    prog = random_program(seed)
    backend_equivalence_check(prog, random_inputs(seed, prog),
                              levels=("O2",), grids=(grid,),
                              backends=equivalence_backends((workers,)))


def _do_while_program(decay: float, threshold: float,
                      shift: int) -> GeneratedProgram:
    """A DO WHILE whose trip count depends on reduced data: every
    worker must agree on the condition each trip or control flow
    diverges.  ``random_program`` never emits DO WHILE, so the loop
    shapes are enumerated here."""
    source = (
        "      REAL, DIMENSION(N,N) :: A, B\n"
        "!HPF$ DISTRIBUTE A(BLOCK,BLOCK)\n"
        "!HPF$ ALIGN B WITH A\n"
        "      S = SUM(A)\n"
        f"      DO WHILE (S > {threshold!r})\n"
        f"        A = {decay!r} * A + "
        f"0.05 * CSHIFT(B, SHIFT={shift}, DIM=1)\n"
        "        T = MAXVAL(A)\n"
        f"        B = {decay!r} * B + T * 0.001\n"
        "        S = SUM(A)\n"
        "      ENDDO\n"
        "      B = B + S\n")
    return GeneratedProgram(source=source, arrays=["A", "B"],
                            bindings={"N": 12})


@settings(max_examples=6, parent=FUZZ)
@given(seed=st.integers(0, 1_000),
       decay=st.sampled_from([0.25, 0.5, 0.7]),
       threshold=st.sampled_from([1.0, 10.0, 200.0]),
       shift=st.sampled_from([-2, -1, 1, 2]),
       workers=workers_st)
def test_do_while_bounds(seed, decay, threshold, shift, workers):
    prog = _do_while_program(decay, threshold, shift)
    rng = np.random.default_rng(seed)
    inputs = {name: rng.uniform(0.1, 1.0, (12, 12))
              for name in prog.arrays}
    backend_equivalence_check(prog, inputs, levels=("O0", "O4"),
                              backends=equivalence_backends((workers,)))
