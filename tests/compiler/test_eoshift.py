"""EOSHIFT generalization tests (paper section 2.1: "the techniques
presented can be generalized to handle the EOSHIFT intrinsic as well").

EOSHIFT-derived offset arrays get boundary-filled overlap areas; fills
of different kinds never share an overlap region (the fill discipline),
and communication unioning unions CSHIFT- and EOSHIFT-derived
requirements separately.
"""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.compiler.plan import FullShiftOp, OverlapShiftOp
from repro.frontend import parse_program
from repro.machine import Machine
from repro.passes.normalize import NormalizePass
from repro.passes.offset_arrays import OffsetArrayPass
from repro.runtime.reference import evaluate

#: a 5-point stencil with zero-flux-style boundaries via EOSHIFT
EOS_FIVE_POINT = """
      REAL, DIMENSION(N,N) :: T, U
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
!HPF$ ALIGN U WITH T
      T = U + EOSHIFT(U,SHIFT=+1,DIM=1) + EOSHIFT(U,SHIFT=-1,DIM=1)
      T = T + EOSHIFT(U,SHIFT=+1,DIM=2)
      T = T + EOSHIFT(U,SHIFT=-1,DIM=2)
"""

#: corner-using EOSHIFT stencil (multi-offset chains, same boundary).
#: note Fortran's EOSHIFT argument order: (ARRAY, SHIFT, BOUNDARY, DIM),
#: so DIM must be passed by keyword
EOS_NINE_POINT = """
      REAL, DIMENSION(N,N) :: T, U
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
!HPF$ ALIGN U WITH T
      T = U + EOSHIFT(U,+1,DIM=1) + EOSHIFT(U,-1,DIM=1)
      T = T + EOSHIFT(U,+1,DIM=2) + EOSHIFT(U,-1,DIM=2)
      T = T + EOSHIFT(EOSHIFT(U,+1,DIM=1),+1,DIM=2)
      T = T + EOSHIFT(EOSHIFT(U,+1,DIM=1),-1,DIM=2)
      T = T + EOSHIFT(EOSHIFT(U,-1,DIM=1),+1,DIM=2)
      T = T + EOSHIFT(EOSHIFT(U,-1,DIM=1),-1,DIM=2)
"""


def grid(n, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n, n)).astype(np.float32)


def check_levels(src, n=16, seed=0):
    u = grid(n, seed)
    ref = evaluate(parse_program(src, bindings={"N": n}),
                   inputs={"U": u})["T"]
    for level in ("O0", "O1", "O2", "O3", "O4"):
        cp = compile_hpf(src, bindings={"N": n}, level=level,
                         outputs={"T"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
        np.testing.assert_allclose(res.arrays["T"], ref, rtol=1e-5,
                                   err_msg=level)
        yield level, cp, res


class TestEOShiftPipeline:
    def test_five_point_all_levels_correct(self):
        list(check_levels(EOS_FIVE_POINT))

    def test_nine_point_corners_correct(self):
        list(check_levels(EOS_NINE_POINT, seed=3))

    def test_shifts_converted_to_overlap(self):
        for level, cp, _ in check_levels(EOS_FIVE_POINT):
            if level == "O4":
                assert cp.plan.count_ops(FullShiftOp) == 0
                assert cp.plan.count_ops(OverlapShiftOp) == 4

    def test_unioning_minimal_messages(self):
        for level, cp, res in check_levels(EOS_NINE_POINT, seed=4):
            if level == "O3":
                assert cp.plan.count_ops(OverlapShiftOp) == 4

    def test_boundary_on_plan_ops(self):
        cp = compile_hpf(EOS_FIVE_POINT, bindings={"N": 16}, level="O4",
                         outputs={"T"})
        shifts = [op for op in cp.plan.walk_ops()
                  if isinstance(op, OverlapShiftOp)]
        assert all(op.boundary == 0.0 for op in shifts)

    def test_edge_pes_send_fewer_messages(self):
        cp = compile_hpf(EOS_FIVE_POINT, bindings={"N": 16}, level="O4",
                         outputs={"T"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": grid(16)})
        # circular would send 16; edge PEs fill with boundary instead
        assert res.report.messages == 8

    def test_convert_eoshift_off(self):
        p = parse_program(EOS_FIVE_POINT, bindings={"N": 16})
        NormalizePass().run(p)
        pass_ = OffsetArrayPass(outputs={"T"}, convert_eoshift=False)
        pass_.run(p)
        assert pass_.stats.shifts_converted == 0


#: the same corner stencil with the chains written *descending* (dim 2
#: inner, dim 1 outer).  The runtime's corner pickup carries the
#: sender's overlap data in either dimension order, but the coverage
#: verifier used to credit only ascending-order chains and rejected
#: these programs at O1/O2 with "corner cells not carried".
EOS_NINE_POINT_DESC = """
      REAL, DIMENSION(N,N) :: T, U
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
!HPF$ ALIGN U WITH T
      T = U + EOSHIFT(U,+1,DIM=1) + EOSHIFT(U,-1,DIM=1)
      T = T + EOSHIFT(U,+1,DIM=2) + EOSHIFT(U,-1,DIM=2)
      T = T + EOSHIFT(EOSHIFT(U,+1,DIM=2),+1,DIM=1)
      T = T + EOSHIFT(EOSHIFT(U,+1,DIM=2),-1,DIM=1)
      T = T + EOSHIFT(EOSHIFT(U,-1,DIM=2),+1,DIM=1)
      T = T + EOSHIFT(EOSHIFT(U,-1,DIM=2),-1,DIM=1)
"""

CSHIFT_CORNER_DESC = """
      REAL, DIMENSION(N,N) :: T, U
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
!HPF$ ALIGN U WITH T
      T = CSHIFT(CSHIFT(U,SHIFT=1,DIM=2),SHIFT=1,DIM=1)
     &  + CSHIFT(CSHIFT(U,SHIFT=-1,DIM=2),SHIFT=1,DIM=1)
"""


class TestDescendingChains:
    """Descending-dimension shift chains vs. the reference interpreter
    (regression: these failed to compile at O1/O2 before the verifier
    accepted order-independent corner pickup)."""

    def test_eoshift_descending_all_levels(self):
        list(check_levels(EOS_NINE_POINT_DESC, seed=8))

    def test_cshift_descending_all_levels(self):
        list(check_levels(CSHIFT_CORNER_DESC, n=12, seed=9))

    def test_descending_matches_ascending_plan_traffic(self):
        for n in (12, 16):
            u = grid(n, seed=n)
            ref = evaluate(parse_program(EOS_NINE_POINT_DESC,
                                         bindings={"N": n}),
                           inputs={"U": u})["T"]
            for level in ("O1", "O2"):
                cp = compile_hpf(EOS_NINE_POINT_DESC, bindings={"N": n},
                                 level=level, outputs={"T"})
                for g in ((2, 2), (4, 1), (1, 4)):
                    res = cp.run(Machine(grid=g), inputs={"U": u})
                    np.testing.assert_allclose(res.arrays["T"], ref,
                                               rtol=1e-5,
                                               err_msg=f"{level} {g}")


class TestFillDiscipline:
    MIXED = """
    REAL A(16,16), B(16,16), C(16,16), U(16,16)
    A = CSHIFT(U,SHIFT=1,DIM=1)
    B = EOSHIFT(U,SHIFT=1,DIM=1)
    C = A + B
    """

    def test_conflicting_fills_not_both_converted(self):
        p = parse_program(self.MIXED)
        NormalizePass().run(p)
        pass_ = OffsetArrayPass(outputs={"C"})
        pass_.run(p)
        assert pass_.stats.shifts_converted == 1
        assert pass_.stats.shifts_kept == 1
        assert pass_.stats.fill_conflicts == 1

    def test_mixed_fills_correct_everywhere(self):
        u = grid(16, 5)
        ref = evaluate(parse_program(self.MIXED), inputs={"U": u})["C"]
        for level in ("O0", "O4"):
            cp = compile_hpf(self.MIXED, level=level, outputs={"C"})
            res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
            np.testing.assert_allclose(res.arrays["C"], ref, rtol=1e-5)

    def test_different_regions_no_conflict(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16), U(16,16)
        A = CSHIFT(U,SHIFT=1,DIM=1)
        B = EOSHIFT(U,SHIFT=-1,DIM=1)
        C = A + B
        """
        p = parse_program(src)
        NormalizePass().run(p)
        pass_ = OffsetArrayPass(outputs={"C"})
        pass_.run(p)
        assert pass_.stats.shifts_converted == 2
        assert pass_.stats.fill_conflicts == 0

    def test_different_boundary_values_conflict(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16), U(16,16)
        A = EOSHIFT(U,SHIFT=1,DIM=1,BOUNDARY=1.0)
        B = EOSHIFT(U,SHIFT=1,DIM=1,BOUNDARY=2.0)
        C = A + B
        """
        p = parse_program(src)
        NormalizePass().run(p)
        pass_ = OffsetArrayPass(outputs={"C"})
        pass_.run(p)
        assert pass_.stats.fill_conflicts == 1

    def test_different_boundaries_still_correct(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16), U(16,16)
        A = EOSHIFT(U,SHIFT=1,DIM=1,BOUNDARY=1.0)
        B = EOSHIFT(U,SHIFT=1,DIM=1,BOUNDARY=2.0)
        C = A + B
        """
        u = grid(16, 6)
        ref = evaluate(parse_program(src), inputs={"U": u})["C"]
        for level in ("O0", "O4"):
            cp = compile_hpf(src, level=level, outputs={"C"})
            res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
            np.testing.assert_allclose(res.arrays["C"], ref, rtol=1e-5)

    def test_homogeneous_chain_required(self):
        # CSHIFT of an EOSHIFT-offset array must not compose
        src = """
        REAL A(16,16), B(16,16), C(16,16), U(16,16)
        A = EOSHIFT(U,SHIFT=1,DIM=1)
        B = CSHIFT(A,SHIFT=1,DIM=2)
        C = B + 0
        """
        p = parse_program(src)
        NormalizePass().run(p)
        pass_ = OffsetArrayPass(outputs={"C"})
        pass_.run(p)
        assert pass_.stats.fill_conflicts >= 1

    def test_heterogeneous_chain_still_correct(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16), U(16,16)
        A = EOSHIFT(U,SHIFT=1,DIM=1)
        B = CSHIFT(A,SHIFT=1,DIM=2)
        C = B + 0
        """
        u = grid(16, 7)
        ref = evaluate(parse_program(src), inputs={"U": u})["C"]
        for level in ("O0", "O2", "O4"):
            cp = compile_hpf(src, level=level, outputs={"C"})
            res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
            np.testing.assert_allclose(res.arrays["C"], ref, rtol=1e-5)
