"""End-to-end correctness: every optimization level must compute the
serial reference semantics exactly, for every kernel, grid, and input.

This is the semantics-preservation guarantee behind the whole paper:
the optimizations eliminate data movement without changing values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.compiler import compile_hpf
from repro.frontend import parse_program
from repro.machine import Machine
from repro.runtime.reference import evaluate

LEVELS = ["O0", "O1", "O2", "O3", "O4"]


def check(src, outputs, inputs, scalars=None, bindings=None,
          grids=((2, 2),), levels=LEVELS, iterations=1):
    bindings = bindings or {"N": 16}
    ref_prog = parse_program(src, bindings=bindings)
    ref = evaluate(ref_prog, inputs=inputs, scalars=scalars)
    if iterations > 1:
        for _ in range(iterations - 1):
            ref = evaluate(ref_prog, inputs=ref, scalars=scalars)
    for level in levels:
        cp = compile_hpf(src, bindings=bindings, level=level,
                         outputs=set(outputs))
        for grid in grids:
            res = cp.run(Machine(grid=grid), inputs=inputs,
                         scalars=scalars, iterations=iterations)
            for name in outputs:
                np.testing.assert_allclose(
                    res.arrays[name.upper()], ref[name.upper()],
                    rtol=1e-5,
                    err_msg=f"{level} on grid {grid}, array {name}")


def grid16(seed):
    return np.random.default_rng(seed).standard_normal(
        (16, 16)).astype(np.float32)


COEFFS5 = {f"C{i}": float(i) for i in range(1, 6)}
COEFFS9 = {f"C{i}": float(i) / 2 for i in range(1, 10)}


class TestPaperKernels:
    def test_five_point(self):
        check(kernels.FIVE_POINT_ARRAY_SYNTAX, ["DST"],
              {"SRC": grid16(0)}, COEFFS5)

    def test_nine_point_cshift(self):
        check(kernels.NINE_POINT_CSHIFT, ["DST"],
              {"SRC": grid16(1)}, COEFFS9)

    def test_nine_point_array_syntax(self):
        check(kernels.NINE_POINT_ARRAY_SYNTAX, ["DST"],
              {"SRC": grid16(2)}, COEFFS9)

    def test_problem9(self):
        check(kernels.PURDUE_PROBLEM9, ["T"], {"U": grid16(3)})

    def test_problem9_all_outputs(self):
        check(kernels.PURDUE_PROBLEM9, ["T", "RIP", "RIN"],
              {"U": grid16(4)})

    def test_twentyfive_point(self):
        w = {f"W{k}": float(k % 5 + 1) for k in range(1, 26)}
        check(kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX, ["DST"],
              {"SRC": grid16(5)}, w, bindings={"N": 16})

    def test_3d_seven_point(self):
        u = np.random.default_rng(6).standard_normal(
            (8, 8, 8)).astype(np.float32)
        w = {f"W{k}": 1.0 for k in range(1, 8)}
        check(kernels.SEVEN_POINT_3D_CSHIFT, ["DST"], {"SRC": u}, w,
              bindings={"N": 8})

    def test_3d_twentyseven_point(self):
        u = np.random.default_rng(7).standard_normal(
            (8, 8, 8)).astype(np.float32)
        w = {f"W{k}": float(k) for k in range(1, 28)}
        check(kernels.TWENTYSEVEN_POINT_3D_CSHIFT, ["DST"], {"SRC": u}, w,
              bindings={"N": 8})


class TestGrids:
    @pytest.mark.parametrize("grid", [(1, 1), (1, 2), (2, 1), (2, 2),
                                      (4, 2), (2, 4), (4, 4)])
    def test_problem9_grid(self, grid):
        check(kernels.PURDUE_PROBLEM9, ["T"], {"U": grid16(8)},
              grids=(grid,), levels=["O0", "O4"])

    def test_uneven_blocks(self):
        u = np.random.default_rng(9).standard_normal(
            (18, 18)).astype(np.float32)
        check(kernels.PURDUE_PROBLEM9, ["T"], {"U": u},
              bindings={"N": 18}, grids=((2, 2), (4, 2)),
              levels=["O0", "O4"])

    def test_iterated_execution(self):
        check(kernels.PURDUE_PROBLEM9, ["T"], {"U": grid16(10)},
              iterations=3, levels=["O0", "O4"])


class TestEOShift:
    SRC = """
    REAL A(16,16), B(16,16)
    A = B + EOSHIFT(B,SHIFT=1,BOUNDARY=4.5,DIM=1)
    A = A + EOSHIFT(B,SHIFT=-1,DIM=2)
    """

    def test_eoshift_all_levels(self):
        check(self.SRC, ["A"], {"B": grid16(11)})


class TestControlFlow:
    def test_do_loop_jacobi_style(self):
        src = """
        REAL U(16,16), T(16,16)
        DO K = 1, 4
          T = U + CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &      + CSHIFT(U,1,2) + CSHIFT(U,-1,2)
          U = T * 0.2
        ENDDO
        """
        check(src, ["U"], {"U": grid16(12)})

    def test_if_branches(self):
        src = """
        REAL A(16,16), B(16,16)
        X = 0.5
        IF (X < 1) THEN
          A = CSHIFT(B,1,1) + 1
        ELSE
          A = CSHIFT(B,-1,1) + 2
        ENDIF
        """
        check(src, ["A"], {"B": grid16(13)})

    def test_scalar_updates_inside_loop(self):
        src = """
        REAL A(16,16)
        S = 0.0
        DO K = 1, 3
          S = S + 1.0
          A = A + S
        ENDDO
        """
        check(src, ["A"], {"A": grid16(14)})


class TestMixedPrecision:
    def test_double_precision(self):
        src = """
        DOUBLE PRECISION A(16,16), B(16,16)
        A = 0.25 * (CSHIFT(B,1,1) + CSHIFT(B,-1,1)
     &     + CSHIFT(B,1,2) + CSHIFT(B,-1,2))
        """
        b = np.random.default_rng(15).standard_normal((16, 16))
        check(src, ["A"], {"B": b})


@st.composite
def random_stencil_program(draw):
    """A random multi-statement CSHIFT stencil over two arrays."""
    nstmt = draw(st.integers(1, 5))
    lines = ["REAL T(12,12), U(12,12)"]
    first = True
    for _ in range(nstmt):
        nterms = draw(st.integers(1, 4))
        terms = []
        for _ in range(nterms):
            dx = draw(st.integers(-2, 2))
            dy = draw(st.integers(-2, 2))
            expr = "U"
            if dx:
                expr = f"CSHIFT({expr},SHIFT={dx},DIM=1)"
            if dy:
                expr = f"CSHIFT({expr},SHIFT={dy},DIM=2)"
            coeff = draw(st.integers(1, 5))
            terms.append(f"{coeff} * {expr}")
        rhs = " + ".join(terms)
        if first:
            lines.append(f"T = {rhs}")
            first = False
        else:
            lines.append(f"T = T + {rhs}")
    return "\n".join(lines)


class TestPropertyRandomStencils:
    @settings(max_examples=25, deadline=None)
    @given(src=random_stencil_program(), seed=st.integers(0, 100))
    def test_random_stencil_all_levels(self, src, seed):
        u = np.random.default_rng(seed).standard_normal(
            (12, 12)).astype(np.float64)
        bindings = {"N": 12}
        ref = evaluate(parse_program(src, bindings=bindings),
                       inputs={"U": u})["T"]
        for level in ("O0", "O2", "O4"):
            cp = compile_hpf(src, bindings=bindings, level=level,
                             outputs={"T"})
            res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
            np.testing.assert_allclose(res.arrays["T"], ref, rtol=1e-6,
                                       err_msg=level)
