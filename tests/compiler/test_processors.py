"""!HPF$ PROCESSORS directive tests."""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.errors import ExecutionError
from repro.frontend import parse_program
from repro.machine import Machine

SRC = """
      REAL, DIMENSION(N,N) :: A, B
!HPF$ PROCESSORS P(2,2)
!HPF$ DISTRIBUTE A(BLOCK,BLOCK)
!HPF$ ALIGN B WITH A
      A = B + CSHIFT(B,1,1)
"""


class TestProcessors:
    def test_recorded_on_program(self):
        p = parse_program(SRC, bindings={"N": 16})
        assert p.processors == (2, 2)

    def test_threaded_to_plan(self):
        cp = compile_hpf(SRC, bindings={"N": 16}, outputs={"A"})
        assert cp.plan.processors == (2, 2)

    def test_matching_grid_runs(self):
        cp = compile_hpf(SRC, bindings={"N": 16}, outputs={"A"})
        b = np.ones((16, 16), np.float32)
        res = cp.run(Machine(grid=(2, 2)), inputs={"B": b})
        assert (res.arrays["A"] == 2.0).all()

    def test_mismatched_grid_rejected(self):
        cp = compile_hpf(SRC, bindings={"N": 16}, outputs={"A"})
        with pytest.raises(ExecutionError) as exc:
            cp.run(Machine(grid=(4, 1)))
        assert "PROCESSORS" in str(exc.value)

    def test_symbolic_extents(self):
        src = """
        REAL A(16,16)
!HPF$ PROCESSORS GRID(NP,NP)
        A = 1.0
        """
        p = parse_program(src, bindings={"N": 16, "NP": 4})
        assert p.processors == (4, 4)

    def test_no_directive_means_any_grid(self):
        src = "REAL A(16,16)\nA = 1.0"
        cp = compile_hpf(src, bindings={"N": 16}, outputs={"A"})
        for grid in ((1, 1), (2, 2), (4, 4)):
            cp.run(Machine(grid=grid))
