"""Compiler driver tests: options, reports, traces, level parsing."""

import pytest

from repro import kernels
from repro.compiler import HpfCompiler, OptLevel, compile_hpf
from repro.compiler.options import CompilerOptions
from repro.frontend import parse_program
from repro.ir.printer import format_program


class TestOptLevel:
    def test_parse_string(self):
        assert OptLevel.parse("o3") is OptLevel.O3

    def test_parse_int(self):
        assert OptLevel.parse(2) is OptLevel.O2

    def test_parse_identity(self):
        assert OptLevel.parse(OptLevel.O1) is OptLevel.O1

    def test_flags_cumulative(self):
        assert not OptLevel.O0.offset_arrays
        assert OptLevel.O1.offset_arrays
        assert not OptLevel.O1.fuse_loops
        assert OptLevel.O2.fuse_loops and OptLevel.O2.context_partition
        assert not OptLevel.O2.comm_union
        assert OptLevel.O3.comm_union and not OptLevel.O3.memopt
        assert OptLevel.O4.memopt

    def test_bad_level(self):
        with pytest.raises(KeyError):
            OptLevel.parse("O7")


class TestOptions:
    def test_outputs_uppercased(self):
        opts = CompilerOptions.make("O4", outputs={"t"})
        assert opts.outputs == frozenset({"T"})

    def test_pipeline_composition(self):
        assert len(HpfCompiler.at_level("O0").build_passes()) == 1
        assert len(HpfCompiler.at_level("O1").build_passes()) == 2
        assert len(HpfCompiler.at_level("O4").build_passes()) == 4


class TestCompileReport:
    def test_report_counts(self):
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 16},
                         level="O4", outputs={"T"})
        r = cp.report
        assert r.level == "O4"
        assert (r.overlap_shifts, r.full_shifts, r.loop_nests) == (4, 0, 1)
        assert r.temporaries == 0
        assert r.copies_inserted == 0

    def test_temp_bytes(self):
        cp = compile_hpf(kernels.NINE_POINT_CSHIFT, bindings={"N": 16},
                         level="O0", outputs={"DST"})
        assert cp.report.temporaries == 12
        assert cp.report.temp_bytes_global == 12 * 16 * 16 * 4

    def test_pass_stats_exposed(self):
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 16},
                         level="O4", outputs={"T"})
        assert "offset-arrays" in cp.report.pass_stats
        assert "comm-union" in cp.report.pass_stats


class TestTrace:
    def test_trace_off_by_default(self):
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 16},
                         level="O4", outputs={"T"})
        assert cp.trace is None

    def test_trace_snapshots(self):
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 16},
                         level="O4", outputs={"T"}, keep_trace=True)
        names = [n for n, _ in cp.trace.snapshots]
        assert names == ["input", "normalize", "offset-arrays",
                         "context-partition", "comm-union"]

    def test_trace_missing_pass(self):
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 16},
                         level="O1", outputs={"T"}, keep_trace=True)
        with pytest.raises(KeyError):
            cp.trace.after("comm-union")


class TestProgramInput:
    def test_program_not_mutated(self):
        p = parse_program(kernels.PURDUE_PROBLEM9, bindings={"N": 16})
        before = format_program(p)
        HpfCompiler.at_level("O4", outputs={"T"}).compile(p)
        assert format_program(p) == before

    def test_same_program_multiple_levels(self):
        p = parse_program(kernels.PURDUE_PROBLEM9, bindings={"N": 16})
        r0 = HpfCompiler.at_level("O0", outputs={"T"}).compile(p)
        r4 = HpfCompiler.at_level("O4", outputs={"T"}).compile(p)
        assert r0.report.full_shifts == 8
        assert r4.report.overlap_shifts == 4
