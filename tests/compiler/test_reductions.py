"""Distributed reduction tests (SUM / MAXVAL / MINVAL).

Each PE reduces its owned subgrid; partials combine with a logarithmic
exchange, charged to the cost model as an allreduce — the standard HPF
lowering of reduction intrinsics.
"""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.errors import SemanticError
from repro.frontend import parse_program
from repro.ir.nodes import Reduction
from repro.machine import Machine
from repro.runtime.reference import evaluate


def grid(n=16, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n, n)).astype(np.float32)


class TestParsing:
    def test_sum_node(self):
        p = parse_program("REAL A(8,8)\nS = SUM(A)")
        assert isinstance(p.body[0].rhs, Reduction)
        assert p.body[0].rhs.op == "SUM"

    def test_nested_in_scalar_expr(self):
        p = parse_program("REAL R(8,8)\nERR = SQRT(SUM(R * R))")
        rhs = p.body[0].rhs
        assert rhs.name == "SQRT"
        assert isinstance(rhs.args[0], Reduction)

    def test_bare_array_in_scalar_still_rejected(self):
        with pytest.raises(SemanticError):
            parse_program("REAL A(8,8)\nS = A + 1")

    def test_array_outside_reduction_rejected(self):
        with pytest.raises(SemanticError):
            parse_program("REAL A(8,8)\nS = SUM(A) + A")


class TestSemantics:
    @pytest.mark.parametrize("op,np_op", [("SUM", np.sum),
                                          ("MAXVAL", np.max),
                                          ("MINVAL", np.min)])
    def test_reduction_value(self, op, np_op):
        src = f"""
        REAL A(16,16), OUT(16,16)
        S = {op}(A)
        OUT = OUT + S
        """
        a = grid(seed=1)
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"OUT"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"A": a})
        expected = float(np_op(a.astype(np.float32)))
        np.testing.assert_allclose(res.arrays["OUT"][0, 0], expected,
                                   rtol=1e-5)
        assert res.scalars["S"] == pytest.approx(expected, rel=1e-5)

    def test_dot_product_style(self):
        src = """
        REAL R(16,16), OUT(16,16)
        NRM = SQRT(SUM(R * R))
        OUT = OUT + NRM
        """
        r = grid(seed=2)
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"OUT"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"R": r})
        expected = float(np.sqrt((r.astype(np.float64) ** 2).sum()))
        assert res.scalars["NRM"] == pytest.approx(expected, rel=1e-4)

    def test_reduction_of_shifted_expression(self):
        # normalization hoists the shift; the reduction sees the temp
        src = """
        REAL U(16,16), OUT(16,16)
        S = SUM(U * CSHIFT(U,1,1))
        OUT = OUT + S
        """
        u = grid(seed=3)
        ref = evaluate(parse_program(src, bindings={"N": 16}),
                       inputs={"U": u})
        for level in ("O0", "O4"):
            cp = compile_hpf(src, bindings={"N": 16}, level=level,
                             outputs={"OUT"})
            res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
            assert res.scalars["S"] == pytest.approx(ref["OUT"][0, 0],
                                                     rel=1e-4)

    def test_matches_reference_on_grids(self):
        src = """
        REAL A(16,16), OUT(16,16)
        S = MAXVAL(ABS(A))
        OUT = A / S
        """
        a = grid(seed=4)
        ref = evaluate(parse_program(src, bindings={"N": 16}),
                       inputs={"A": a})["OUT"]
        for g in ((1, 1), (2, 2), (4, 4)):
            cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                             outputs={"OUT"})
            res = cp.run(Machine(grid=g), inputs={"A": a})
            np.testing.assert_allclose(res.arrays["OUT"], ref, rtol=1e-5)


class TestCosts:
    def test_allreduce_messages_charged(self):
        src = """
        REAL A(16,16), OUT(16,16)
        S = SUM(A)
        OUT = OUT + S
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"OUT"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"A": grid()})
        # 4 PEs -> 2 rounds x 4 PEs = 8 reduction messages
        assert res.report.messages == 8

    def test_single_pe_no_messages(self):
        src = """
        REAL A(16,16), OUT(16,16)
        S = SUM(A)
        OUT = OUT + S
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"OUT"})
        res = cp.run(Machine(grid=(1, 1)), inputs={"A": grid()})
        assert res.report.messages == 0

    def test_reduction_loop_charged(self):
        src = """
        REAL A(16,16), OUT(16,16)
        S = SUM(A)
        OUT = OUT + S
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"OUT"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"A": grid()})
        # reduction traverses all 256 points plus the OUT update's 256
        assert res.report.loop_points == 512


class TestControlFlow:
    def test_reduction_in_if_condition(self):
        src = """
        REAL A(16,16), OUT(16,16)
        IF (MAXVAL(A) > 100.0) THEN
          OUT = 1.0
        ELSE
          OUT = 2.0
        ENDIF
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"OUT"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"A": grid(seed=5)})
        assert (res.arrays["OUT"] == 2.0).all()

    def test_convergence_loop(self):
        # scaled power-iteration-flavoured loop with a reduction per step
        src = """
        REAL U(16,16), T(16,16)
        DO K = 1, 3
          T = 0.25 * (CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &              + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
          S = MAXVAL(ABS(T))
          U = T / S
        ENDDO
        """
        u = np.abs(grid(seed=6)) + 0.1
        ref = evaluate(parse_program(src, bindings={"N": 16}),
                       inputs={"U": u})["U"]
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"U"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
        np.testing.assert_allclose(res.arrays["U"], ref, rtol=1e-4)
