"""DO WHILE (convergence loop) tests."""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.errors import UnsupportedFeatureError
from repro.frontend import parse_program
from repro.ir.nodes import DoWhile
from repro.machine import Machine
from repro.runtime.reference import evaluate


class TestParsing:
    def test_do_while_node(self):
        p = parse_program("""
        REAL A(8,8)
        S = 1.0
        DO WHILE (S > 0.5)
          S = S - 0.2
          A = A + S
        ENDDO
        """)
        loop = p.body[1]
        assert isinstance(loop, DoWhile)
        assert len(loop.body) == 2

    def test_end_do_two_words(self):
        p = parse_program("""
        REAL A(8,8)
        S = 1.0
        DO WHILE (S > 0.5)
          S = S - 0.6
        END DO
        """)
        assert isinstance(p.body[1], DoWhile)

    def test_shift_in_condition_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_program("""
            REAL A(8,8)
            DO WHILE (MAXVAL(CSHIFT(A,1,1)) > 0)
              A = A - 1
            ENDDO
            """)

    def test_counted_do_still_works(self):
        p = parse_program("REAL A(8,8)\nDO K = 1, 3\nA = A + 1\nENDDO")
        from repro.ir.nodes import DoLoop
        assert isinstance(p.body[0], DoLoop)


class TestExecution:
    SRC = """
    REAL A(16,16)
    S = 1.0
    DO WHILE (S > 0.1)
      A = A + S
      S = S * 0.5
    ENDDO
    """

    def test_matches_reference(self):
        a0 = np.random.default_rng(0).standard_normal(
            (16, 16)).astype(np.float32)
        ref = evaluate(parse_program(self.SRC, bindings={"N": 16}),
                       inputs={"A": a0})["A"]
        for level in ("O0", "O4"):
            cp = compile_hpf(self.SRC, bindings={"N": 16}, level=level,
                             outputs={"A"})
            res = cp.run(Machine(grid=(2, 2)), inputs={"A": a0})
            np.testing.assert_allclose(res.arrays["A"], ref, rtol=1e-5)

    def test_zero_iterations(self):
        src = """
        REAL A(16,16)
        S = 0.0
        DO WHILE (S > 1.0)
          A = A + 99.0
        ENDDO
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"A"})
        res = cp.run(Machine(grid=(2, 2)))
        assert not res.arrays["A"].any()

    def test_convergence_driven_jacobi(self):
        # iterate until the residual reduction stalls below a tolerance
        # damped Jacobi: plain neighbour averaging leaves the
        # checkerboard mode oscillating forever (eigenvalue -1), so damp
        # by half to make every mode contract
        src = """
        REAL U(16,16), T(16,16), D(16,16)
        ERR = 1.0
        DO WHILE (ERR > 0.01)
          T = 0.125 * (CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &               + CSHIFT(U,1,2) + CSHIFT(U,-1,2)) + 0.5 * U
          D = ABS(T - U)
          ERR = MAXVAL(D)
          U = T
        ENDDO
        """
        u0 = np.random.default_rng(1).standard_normal(
            (16, 16)).astype(np.float32)
        ref = evaluate(parse_program(src, bindings={"N": 16}),
                       inputs={"U": u0})
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"U"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": u0})
        np.testing.assert_allclose(res.arrays["U"], ref["U"], rtol=1e-4)
        assert res.scalars["ERR"] <= 0.01

    def test_shifts_inside_while_communicate_each_iteration(self):
        src = """
        REAL U(16,16), T(16,16)
        S = 3.0
        DO WHILE (S > 0.5)
          T = CSHIFT(U,1,1) + CSHIFT(U,-1,1)
          U = T * 0.5
          S = S - 1.0
        ENDDO
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"U"})
        u0 = np.abs(np.random.default_rng(2).standard_normal(
            (16, 16))).astype(np.float32)
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": u0})
        # 3 iterations x 2 shifts x 4 PEs
        assert res.report.messages == 24

    def test_fortran_emission(self):
        cp = compile_hpf(self.SRC, bindings={"N": 16}, level="O4",
                         outputs={"A"})
        text = cp.emit_fortran()
        assert "DO WHILE ((S .GT. 0.1))" in text
