"""The on-disk plan cache: cross-process persistence, atomicity,
corruption tolerance, and machine-fingerprint keying.

The keying regression under guard: a persistent entry must miss — not
silently replay — when the machine configuration changes, because
unlike the in-memory cache its entries outlive the process (and
therefore the machine object) that wrote them.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.compiler import (
    PersistentPlanCache, PlanCache, cache_key, compile_hpf,
)
from repro.compiler.options import CompilerOptions
from repro.kernels import KERNELS
from repro.machine import Machine
from repro.machine.cost_model import CostModel

SPEC = KERNELS["purdue9"]


def _compile(cache, bindings=None, **options):
    return compile_hpf(SPEC.source, bindings=bindings or {"N": 16},
                       outputs=set(SPEC.outputs), cache=cache,
                       **options)


class TestPersistence:
    def test_miss_then_hit_within_process(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        _compile(cache)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_survives_cache_object_lifetime(self, tmp_path):
        first = _compile(PersistentPlanCache(tmp_path))
        # a brand-new cache object (fresh process, in effect) hits the
        # same entry file and revives an equivalent program
        cache = PersistentPlanCache(tmp_path)
        second = _compile(cache)
        assert cache.stats.hits == 1
        assert second is not first
        machine = lambda: Machine(grid=(2, 2))  # noqa: E731
        rng = np.random.default_rng(0)
        inputs = {"U": rng.standard_normal((16, 16)).astype(np.float32)}
        a = first.run(machine(), inputs=inputs)
        b = second.run(machine(), inputs=inputs)
        np.testing.assert_array_equal(a.arrays["T"], b.arrays["T"])
        assert a.report.summary() == b.report.summary()

    def test_distinct_options_get_distinct_entries(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache, level="O0")
        _compile(cache, level="O4")
        assert len(cache) == 2
        assert cache.stats.misses == 2

    def test_corrupt_entry_degrades_to_recompile(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        for f in tmp_path.glob("*.json"):
            f.write_text("{ truncated garbage")
        _compile(cache)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_schema_mismatch_degrades_to_recompile(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        for f in tmp_path.glob("*.json"):
            doc = json.loads(f.read_text())
            doc["plan"]["schema"] = 10**6
            f.write_text(json.dumps(doc))
        _compile(cache)
        assert cache.stats.hits == 0

    def test_no_tmp_droppings_after_put(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        assert not list(tmp_path.glob("*.tmp"))

    def test_invalidate(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        assert cache.invalidate() == 1
        assert len(cache) == 0
        _compile(cache)
        assert cache.stats.misses == 2


class TestMachineFingerprintKeying:
    """Changing the PE grid or cost parameters must miss the cache."""

    def _key(self, cache):
        return cache.key_for(SPEC.source, "MAIN", {"N": 16},
                             CompilerOptions())

    def test_different_grid_misses(self, tmp_path):
        a = PersistentPlanCache(tmp_path, machine=Machine(grid=(2, 2)))
        b = PersistentPlanCache(tmp_path, machine=Machine(grid=(4, 4)))
        assert self._key(a) != self._key(b)
        _compile(a)
        _compile(b)
        assert b.stats.hits == 0
        assert b.stats.misses == 1
        assert len(a) == 2

    def test_different_cost_model_misses(self, tmp_path):
        base = CostModel()
        tuned = CostModel(alpha=base.alpha * 2)
        a = PersistentPlanCache(
            tmp_path, machine=Machine(grid=(2, 2), cost_model=base))
        b = PersistentPlanCache(
            tmp_path, machine=Machine(grid=(2, 2), cost_model=tuned))
        assert self._key(a) != self._key(b)
        _compile(a)
        _compile(b)
        assert b.stats.hits == 0

    def test_same_machine_hits(self, tmp_path):
        a = PersistentPlanCache(tmp_path, machine=Machine(grid=(2, 2)))
        b = PersistentPlanCache(tmp_path, machine=Machine(grid=(2, 2)))
        _compile(a)
        _compile(b)
        assert b.stats.hits == 1

    def test_in_memory_cache_stays_machine_agnostic(self):
        # the in-memory cache shares plans across machines (plans are
        # symbolic over the grid); only the persistent cache keys on it
        cache = PlanCache()
        key = cache.key_for(SPEC.source, "MAIN", {"N": 16},
                            CompilerOptions())
        assert key == cache_key(SPEC.source, "MAIN", {"N": 16},
                                CompilerOptions())


class TestTieredCache:
    """The service's two-tier cache: in-memory LRU over the
    machine-agnostic disk store, with promotion on disk hits."""

    def _tiered(self, tmp_path):
        from repro.compiler import TieredPlanCache
        return TieredPlanCache(
            PlanCache(8),
            PersistentPlanCache(tmp_path, machine_fingerprint=""))

    def test_put_writes_through_both_tiers(self, tmp_path):
        cache = self._tiered(tmp_path)
        _compile(cache)
        assert len(cache.memory) == 1
        assert len(cache.disk) == 1

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        warm = self._tiered(tmp_path)
        compiled = _compile(warm)
        # fresh process: memory is cold, disk still holds the entry
        cache = self._tiered(tmp_path)
        assert len(cache.memory) == 0
        replay = _compile(cache)
        assert cache.memory.stats.misses == 1
        assert cache.disk.stats.hits == 1
        assert len(cache.memory) == 1  # promoted
        again = _compile(cache)
        assert cache.memory.stats.hits == 1
        assert again is replay

    def test_memory_hit_skips_disk(self, tmp_path):
        cache = self._tiered(tmp_path)
        first = _compile(cache)
        assert _compile(cache) is first
        assert cache.disk.stats.hits == 0
        assert cache.memory.stats.hits == 1

    def test_both_tiers_derive_one_key(self, tmp_path):
        cache = self._tiered(tmp_path)
        opts = CompilerOptions.make("O2")
        key = cache.key_for(SPEC.source, "MAIN", {"N": 16}, opts)
        assert key == cache.memory.key_for(SPEC.source, "MAIN",
                                           {"N": 16}, opts)
        assert key == cache.disk.key_for(SPEC.source, "MAIN",
                                         {"N": 16}, opts)

    def test_machine_specific_disk_tier_rejected(self, tmp_path):
        from repro.compiler import TieredPlanCache
        disk = PersistentPlanCache(tmp_path, machine=Machine(grid=(2, 2)))
        with pytest.raises(ValueError, match="machine-agnostic"):
            TieredPlanCache(PlanCache(8), disk)

    def test_invalidate_clears_both_tiers(self, tmp_path):
        cache = self._tiered(tmp_path)
        _compile(cache)
        assert cache.invalidate() == 2
        assert len(cache.memory) == 0
        assert len(cache.disk) == 0

    def test_memory_only_tier_is_optional_disk(self, tmp_path):
        from repro.compiler import TieredPlanCache
        cache = TieredPlanCache(PlanCache(8))
        first = _compile(cache)
        assert _compile(cache) is first


class TestBoundedStore:
    """The on-disk store is capped: ``max_entries`` + LRU-by-mtime
    pruning on ``put``, plus the init-time ``*.tmp`` orphan sweep.
    Regression for the unbounded-growth bug: every distinct binding
    used to add a file forever, so long-lived experiment sweeps filled
    the disk."""

    def _fill(self, cache, count, start=0):
        for i in range(start, start + count):
            _compile(cache, bindings={"N": 16 + 4 * i})

    def test_put_prunes_beyond_max_entries(self, tmp_path):
        cache = PersistentPlanCache(tmp_path, max_entries=3)
        self._fill(cache, 5)
        assert len(cache) == 3
        assert cache.stats.pruned == 2

    def test_prune_is_lru_by_recency_of_use(self, tmp_path):
        import os
        import time
        cache = PersistentPlanCache(tmp_path, max_entries=2)
        _compile(cache, bindings={"N": 16})
        _compile(cache, bindings={"N": 20})
        # age both entries, then *use* N=16 so it becomes the newer one
        for f in tmp_path.glob("*.json"):
            old = time.time() - 100
            os.utime(f, (old, old))
        _compile(cache, bindings={"N": 16})   # hit refreshes mtime
        _compile(cache, bindings={"N": 24})   # prunes exactly one
        assert len(cache) == 2
        # N=16 survived (it was just used); N=20 was pruned
        fresh = PersistentPlanCache(tmp_path, max_entries=2)
        _compile(fresh, bindings={"N": 16})
        _compile(fresh, bindings={"N": 20})
        assert fresh.stats.hits == 1
        assert fresh.stats.misses == 1

    def test_prune_breaks_mtime_ties_by_name(self, tmp_path):
        """Equal-mtime entries are pruned in (mtime, name) order, not
        directory-listing order.

        On coarse-mtime filesystems a burst of puts lands many entries
        on one timestamp; sorting by raw mtime alone left the victim
        choice to readdir order, so two pruners (or two runs) could
        evict different entries.  The name tie-break makes the survivor
        set a pure function of the directory contents."""
        import os
        import random
        import time
        cache = PersistentPlanCache(tmp_path, max_entries=8)
        names = [f"{i:02d}{'ab'[i % 2]}{'f' * 6}.json" for i in range(40)]
        # Create in scattered order so directory order != name order.
        rng = random.Random(7)
        shuffled = names[:]
        rng.shuffle(shuffled)
        for name in shuffled:
            (tmp_path / name).write_text("{}")
        stamp = time.time() - 50
        for name in names:
            os.utime(tmp_path / name, (stamp, stamp))
        pruned = cache._prune()
        assert pruned == 32
        survivors = sorted(f.name for f in tmp_path.glob("*.json"))
        assert survivors == sorted(names)[-8:], (
            "mtime ties must fall back to name order so the victim set "
            "is deterministic")

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            PersistentPlanCache(tmp_path, max_entries=0)

    def test_init_sweeps_stale_tmp_litter(self, tmp_path):
        import os
        import time
        stale = tmp_path / "deadwriter123.tmp"
        stale.write_text("partial")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = tmp_path / "livewriter456.tmp"
        fresh.write_text("in flight")
        cache = PersistentPlanCache(tmp_path)
        assert not stale.exists(), "orphaned tmp file not swept"
        assert fresh.exists(), "live writer's tmp file must survive"
        assert cache.stats.tmp_swept == 1

    def test_stats_surface_prune_and_sweep_counts(self, tmp_path):
        import os
        import time
        stale = tmp_path / "x.tmp"
        stale.write_text("junk")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        cache = PersistentPlanCache(tmp_path, max_entries=1)
        self._fill(cache, 3)
        stats = cache.stats.as_dict()
        assert stats["pruned"] == 2.0
        assert stats["tmp_swept"] == 1.0

    def test_concurrent_writers_respect_the_cap(self, tmp_path):
        """Multi-process stress: several writers filling one capped
        store concurrently must converge to <= max_entries files and
        zero tmp litter, with every surviving entry readable."""
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        procs = [ctx.Process(target=_stress_writer,
                             args=(str(tmp_path), rank))
                 for rank in range(3)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
            assert p.exitcode == 0
        assert len(list(tmp_path.glob("*.json"))) <= 4
        assert not list(tmp_path.glob("*.tmp"))
        reader = PersistentPlanCache(tmp_path, max_entries=4)
        for f in tmp_path.glob("*.json"):
            from repro.plan.serialize import program_from_json
            program_from_json(f.read_text())  # must parse cleanly


def _stress_writer(path: str, rank: int) -> None:
    cache = PersistentPlanCache(path, max_entries=4)
    for i in range(6):
        _compile(cache, bindings={"N": 16 + 4 * ((rank + i) % 6)})
