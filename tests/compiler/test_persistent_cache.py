"""The on-disk plan cache: cross-process persistence, atomicity,
corruption tolerance, and machine-fingerprint keying.

The keying regression under guard: a persistent entry must miss — not
silently replay — when the machine configuration changes, because
unlike the in-memory cache its entries outlive the process (and
therefore the machine object) that wrote them.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.compiler import (
    PersistentPlanCache, PlanCache, cache_key, compile_hpf,
)
from repro.compiler.options import CompilerOptions
from repro.kernels import KERNELS
from repro.machine import Machine
from repro.machine.cost_model import CostModel

SPEC = KERNELS["purdue9"]


def _compile(cache, bindings=None, **options):
    return compile_hpf(SPEC.source, bindings=bindings or {"N": 16},
                       outputs=set(SPEC.outputs), cache=cache,
                       **options)


class TestPersistence:
    def test_miss_then_hit_within_process(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        _compile(cache)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_survives_cache_object_lifetime(self, tmp_path):
        first = _compile(PersistentPlanCache(tmp_path))
        # a brand-new cache object (fresh process, in effect) hits the
        # same entry file and revives an equivalent program
        cache = PersistentPlanCache(tmp_path)
        second = _compile(cache)
        assert cache.stats.hits == 1
        assert second is not first
        machine = lambda: Machine(grid=(2, 2))  # noqa: E731
        rng = np.random.default_rng(0)
        inputs = {"U": rng.standard_normal((16, 16)).astype(np.float32)}
        a = first.run(machine(), inputs=inputs)
        b = second.run(machine(), inputs=inputs)
        np.testing.assert_array_equal(a.arrays["T"], b.arrays["T"])
        assert a.report.summary() == b.report.summary()

    def test_distinct_options_get_distinct_entries(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache, level="O0")
        _compile(cache, level="O4")
        assert len(cache) == 2
        assert cache.stats.misses == 2

    def test_corrupt_entry_degrades_to_recompile(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        for f in tmp_path.glob("*.json"):
            f.write_text("{ truncated garbage")
        _compile(cache)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_schema_mismatch_degrades_to_recompile(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        for f in tmp_path.glob("*.json"):
            doc = json.loads(f.read_text())
            doc["plan"]["schema"] = 10**6
            f.write_text(json.dumps(doc))
        _compile(cache)
        assert cache.stats.hits == 0

    def test_no_tmp_droppings_after_put(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        assert not list(tmp_path.glob("*.tmp"))

    def test_invalidate(self, tmp_path):
        cache = PersistentPlanCache(tmp_path)
        _compile(cache)
        assert cache.invalidate() == 1
        assert len(cache) == 0
        _compile(cache)
        assert cache.stats.misses == 2


class TestMachineFingerprintKeying:
    """Changing the PE grid or cost parameters must miss the cache."""

    def _key(self, cache):
        return cache.key_for(SPEC.source, "MAIN", {"N": 16},
                             CompilerOptions())

    def test_different_grid_misses(self, tmp_path):
        a = PersistentPlanCache(tmp_path, machine=Machine(grid=(2, 2)))
        b = PersistentPlanCache(tmp_path, machine=Machine(grid=(4, 4)))
        assert self._key(a) != self._key(b)
        _compile(a)
        _compile(b)
        assert b.stats.hits == 0
        assert b.stats.misses == 1
        assert len(a) == 2

    def test_different_cost_model_misses(self, tmp_path):
        base = CostModel()
        tuned = CostModel(alpha=base.alpha * 2)
        a = PersistentPlanCache(
            tmp_path, machine=Machine(grid=(2, 2), cost_model=base))
        b = PersistentPlanCache(
            tmp_path, machine=Machine(grid=(2, 2), cost_model=tuned))
        assert self._key(a) != self._key(b)
        _compile(a)
        _compile(b)
        assert b.stats.hits == 0

    def test_same_machine_hits(self, tmp_path):
        a = PersistentPlanCache(tmp_path, machine=Machine(grid=(2, 2)))
        b = PersistentPlanCache(tmp_path, machine=Machine(grid=(2, 2)))
        _compile(a)
        _compile(b)
        assert b.stats.hits == 1

    def test_in_memory_cache_stays_machine_agnostic(self):
        # the in-memory cache shares plans across machines (plans are
        # symbolic over the grid); only the persistent cache keys on it
        cache = PlanCache()
        key = cache.key_for(SPEC.source, "MAIN", {"N": 16},
                            CompilerOptions())
        assert key == cache_key(SPEC.source, "MAIN", {"N": 16},
                                CompilerOptions())
