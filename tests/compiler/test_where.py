"""WHERE masked-assignment tests.

The frontend lowers each WHERE construct to a materialised LOGICAL mask
temporary (Fortran's evaluate-once semantics) plus masked statements;
the whole optimization pipeline then applies unchanged.
"""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.errors import SemanticError, UnsupportedFeatureError
from repro.frontend import parse_program
from repro.ir.nodes import ArrayAssign
from repro.machine import Machine
from repro.runtime.reference import evaluate


def grid(n=16, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n, n)).astype(np.float32)


def check(src, out, inputs, levels=("O0", "O2", "O4"), n=16):
    ref = evaluate(parse_program(src, bindings={"N": n}),
                   inputs=inputs)[out]
    for level in levels:
        cp = compile_hpf(src, bindings={"N": n}, level=level,
                         outputs={out})
        res = cp.run(Machine(grid=(2, 2)), inputs=inputs)
        np.testing.assert_allclose(res.arrays[out], ref, rtol=1e-5,
                                   err_msg=level)
    return cp


class TestParsing:
    def test_single_line_where(self):
        p = parse_program("REAL A(8,8), U(8,8)\nWHERE (U > 0) A = 1.0")
        # mask materialisation + the masked statement
        assert len(p.body) == 2
        mask_def, masked = p.body
        assert isinstance(mask_def, ArrayAssign)
        assert mask_def.lhs.name.startswith("MASK")
        assert masked.mask is not None

    def test_block_where_elsewhere(self):
        p = parse_program("""
        REAL A(8,8), U(8,8)
        WHERE (U > 0)
          A = 1.0
        ELSEWHERE
          A = -1.0
        END WHERE
        """)
        assert len(p.body) == 3
        assert str(p.body[2].mask).endswith("== 0")

    def test_endwhere_one_word(self):
        p = parse_program("""
        REAL A(8,8), U(8,8)
        WHERE (U > 0)
          A = 1.0
        ENDWHERE
        """)
        assert len(p.body) == 2

    def test_mask_temp_is_logical(self):
        from repro.ir.types import ScalarKind
        p = parse_program("REAL A(8,8), U(8,8)\nWHERE (U > 0) A = 1.0")
        mask_sym = p.symbols.array(p.body[0].lhs.name)
        assert mask_sym.type.element is ScalarKind.LOGICAL
        assert mask_sym.is_temporary

    def test_scalar_mask_rejected(self):
        with pytest.raises(SemanticError):
            parse_program("REAL A(8,8)\nWHERE (X > 0) A = 1.0")

    def test_nested_where_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_program("""
            REAL A(8,8), U(8,8)
            WHERE (U > 0)
              WHERE (U > 1) A = 2.0
            END WHERE
            """)

    def test_mismatched_sections_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_program("""
            REAL A(8,8), U(8,8)
            WHERE (U(1:4,1:4) > 0) A(2:5,2:5) = 1.0
            """)


class TestSemantics:
    def test_threshold(self):
        src = """
        REAL A(16,16), U(16,16)
        WHERE (U > 0) A = U
        """
        u = grid()
        cp = check(src, "A", {"U": u})
        ref = np.where(u > 0, u, 0).astype(np.float32)
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
        np.testing.assert_allclose(res.arrays["A"], ref)

    def test_elsewhere(self):
        src = """
        REAL S(16,16), U(16,16)
        WHERE (U > 0)
          S = 1.0
        ELSEWHERE
          S = -1.0
        END WHERE
        """
        u = grid(seed=1)
        cp = check(src, "S", {"U": u})
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
        np.testing.assert_allclose(res.arrays["S"],
                                   np.where(u > 0, 1.0, -1.0))

    def test_mask_evaluated_once(self):
        # classic: WHERE (A > 0) A = -A must not re-negate
        src = """
        REAL A(16,16)
        WHERE (A > 0)
          A = -A
          A = A * 2.0
        END WHERE
        """
        a = grid(seed=2)
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"A"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"A": a})
        expected = np.where(a > 0, -a * 2.0, a).astype(np.float32)
        np.testing.assert_allclose(res.arrays["A"], expected, rtol=1e-6)

    def test_unselected_elements_preserved(self):
        src = """
        REAL A(16,16), U(16,16)
        WHERE (U > 0) A = 9.0
        """
        a0 = grid(seed=3)
        u = grid(seed=4)
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"A"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"A": a0, "U": u})
        np.testing.assert_allclose(
            res.arrays["A"], np.where(u > 0, 9.0, a0), rtol=1e-6)


class TestWithStencils:
    def test_masked_stencil_update(self):
        # limiter-style: update interior points only where a shifted
        # indicator is positive
        src = """
        REAL A(16,16), U(16,16)
        WHERE (CSHIFT(U,1,1) > 0) A = U + CSHIFT(U,1,2)
        """
        check(src, "A", {"U": grid(seed=5)})

    def test_masked_stencil_minimal_comm(self):
        src = """
        REAL A(16,16), U(16,16)
        WHERE (CSHIFT(U,1,1) > 0) A = U + CSHIFT(U,1,2)
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"A"})
        assert cp.report.overlap_shifts == 2
        assert cp.report.temporaries == 1  # the LOGICAL mask

    def test_where_in_time_loop(self):
        src = """
        REAL A(16,16), U(16,16)
        DO K = 1, 3
          WHERE (A < 10.0) A = A + U
        ENDDO
        """
        check(src, "A", {"U": np.abs(grid(seed=6)),
                         "A": np.abs(grid(seed=7))})

    def test_pattern_matcher_rejects_where(self):
        from repro.baselines.pattern import match_stencil
        from repro.errors import PatternMatchError
        src = """
        REAL A(16,16), U(16,16)
        WHERE (U > 0) A = CSHIFT(U,1,1)
        """
        with pytest.raises(PatternMatchError):
            match_stencil(parse_program(src, bindings={"N": 16}))
