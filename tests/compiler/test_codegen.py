"""Codegen tests: plan structure, halo assignment, fusion control."""

import numpy as np
import pytest

from repro import kernels
from repro.compiler import compile_hpf
from repro.compiler.plan import (
    AllocOp, FreeOp, FullShiftOp, LoopNestOp, OverlapShiftOp,
)


def plan_of(src, level="O4", outputs=None, bindings=None, **opts):
    cp = compile_hpf(src, bindings=bindings or {"N": 16}, level=level,
                     outputs=outputs, **opts)
    return cp.plan, cp.report


class TestPlanStructure:
    def test_o0_uses_full_shifts(self):
        plan, report = plan_of(kernels.PURDUE_PROBLEM9, level="O0",
                               outputs={"T"})
        assert report.full_shifts == 8
        assert report.overlap_shifts == 0
        assert report.loop_nests == 7

    def test_o4_uses_overlap_shifts(self):
        plan, report = plan_of(kernels.PURDUE_PROBLEM9, level="O4",
                               outputs={"T"})
        assert report.full_shifts == 0
        assert report.overlap_shifts == 4
        assert report.loop_nests == 1

    def test_alloc_free_paired(self):
        plan, _ = plan_of(kernels.NINE_POINT_CSHIFT, level="O0",
                          outputs={"DST"})
        allocs = [op for op in plan.walk_ops() if isinstance(op, AllocOp)]
        frees = [op for op in plan.walk_ops() if isinstance(op, FreeOp)]
        assert len(allocs) == 1 and len(frees) == 1
        assert set(allocs[0].names) == set(frees[0].names)

    def test_entry_arrays_exclude_allocated(self):
        plan, _ = plan_of(kernels.NINE_POINT_CSHIFT, level="O0",
                          outputs={"DST"})
        allocated = {n for op in plan.walk_ops()
                     if isinstance(op, AllocOp) for n in op.names}
        assert allocated.isdisjoint(plan.entry_arrays)
        assert {"SRC", "DST"} <= set(plan.entry_arrays)

    def test_sectioned_space(self):
        plan, _ = plan_of(kernels.FIVE_POINT_ARRAY_SYNTAX, level="O4",
                          outputs={"DST"})
        nest = next(op for op in plan.walk_ops()
                    if isinstance(op, LoopNestOp))
        los = [str(lo) for lo, _ in nest.space]
        his = [str(hi) for _, hi in nest.space]
        assert los == ["2", "2"] and his == ["N-1", "N-1"]


class TestHaloAssignment:
    def test_offset_refs_drive_halo(self):
        plan, _ = plan_of(kernels.PURDUE_PROBLEM9, level="O4",
                          outputs={"T"})
        assert plan.arrays["U"].halo == ((1, 1), (1, 1))
        assert plan.arrays["T"].halo == ((0, 0), (0, 0))

    def test_radius2_halo(self):
        plan, _ = plan_of(kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX,
                          level="O4", outputs={"DST"},
                          bindings={"N": 20})
        assert plan.arrays["SRC"].halo == ((2, 2), (2, 2))

    def test_o0_no_halo_needed(self):
        plan, _ = plan_of(kernels.PURDUE_PROBLEM9, level="O0",
                          outputs={"T"})
        # full shifts go through private buffers; no array needs an
        # overlap area before the offset-array optimization creates one
        assert plan.arrays["U"].halo == ((0, 0), (0, 0))

    def test_asymmetric_halo(self):
        src = """
        REAL A(16,16), B(16,16)
        A = CSHIFT(B,SHIFT=2,DIM=1) + CSHIFT(B,SHIFT=-1,DIM=2)
        """
        plan, _ = plan_of(src, level="O4", outputs={"A"})
        assert plan.arrays["B"].halo == ((0, 2), (1, 0))


class TestFusionControl:
    def test_fusion_limit(self):
        _, report = plan_of(kernels.PURDUE_PROBLEM9, level="O4",
                            outputs={"T"}, fusion_limit=3)
        assert report.loop_nests == 3  # 7 statements in groups of <=3

    def test_no_fusion_below_o2(self):
        _, report = plan_of(kernels.PURDUE_PROBLEM9, level="O1",
                            outputs={"T"})
        assert report.loop_nests == 7
        assert report.fused_statements == 0

    def test_incongruent_spaces_not_fused(self):
        src = """
        REAL A(16,16), B(16,16)
        A(2:15,2:15) = 1
        B = 2
        """
        _, report = plan_of(src, level="O4", outputs={"A", "B"})
        assert report.loop_nests == 2

    def test_fusion_preventing_dep_breaks_nest(self):
        # B reads A at a nonzero offset: cannot fuse with A's definition
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        A(2:15,2:15) = C(2:15,2:15) + 1
        B(2:15,2:15) = A(1:14,2:15)
        """
        _, report = plan_of(src, level="O4", outputs={"A", "B"})
        assert report.loop_nests == 2


class TestNestStats:
    def test_o4_nest_annotated(self):
        plan, _ = plan_of(kernels.PURDUE_PROBLEM9, level="O4",
                          outputs={"T"})
        nest = next(op for op in plan.walk_ops()
                    if isinstance(op, LoopNestOp))
        assert nest.memopt and nest.unroll_jam == 2
        assert nest.stats.mem_loads == 2.0
        assert nest.stats.stores == 1.0

    def test_o2_nest_unoptimized(self):
        plan, _ = plan_of(kernels.PURDUE_PROBLEM9, level="O2",
                          outputs={"T"})
        nest = next(op for op in plan.walk_ops()
                    if isinstance(op, LoopNestOp))
        assert not nest.memopt
        assert nest.stats.stores == 7.0


class TestRSDPropagation:
    def test_unioned_rsd_reaches_plan(self):
        plan, _ = plan_of(kernels.PURDUE_PROBLEM9, level="O3",
                          outputs={"T"})
        dim2 = [op for op in plan.walk_ops()
                if isinstance(op, OverlapShiftOp) and op.dim == 2]
        assert len(dim2) == 2
        assert all(op.rsd is not None for op in dim2)
