"""Fortran77+MPI emission tests."""

import pytest

from repro import kernels
from repro.compiler import compile_hpf


def emit(src, level="O4", outputs=None, n=64, **opts):
    cp = compile_hpf(src, bindings={"N": n}, level=level,
                     outputs=outputs, **opts)
    return cp.emit_fortran()


class TestStructure:
    def test_subroutine_wrapper(self):
        text = emit(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert text.startswith("      SUBROUTINE NODE_PROGRAM()")
        assert text.rstrip().endswith("END")
        assert "INCLUDE 'mpif.h'" in text

    def test_overlap_declarations(self):
        text = emit(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert "REAL U(1-1:nl1+1, 1-1:nl2+1)" in text
        assert "REAL T(1:nl1, 1:nl2)" in text

    def test_four_overlap_shifts(self):
        text = emit(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert text.count("CALL OVERLAP_SHIFT(") == 4
        assert "RSD=[0:n1+1,*]" in text

    def test_naive_emits_library_shifts(self):
        text = emit(kernels.PURDUE_PROBLEM9, level="O0", outputs={"T"})
        assert text.count("CALL LIB_CSHIFT(") == 8
        assert "CALL OVERLAP_SHIFT(" not in text

    def test_fused_nest_single_loop(self):
        text = emit(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert "fused subgrid loop nest (7 statements)" in text

    def test_stencil_subscripts(self):
        text = emit(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert "U(i+1,j-1)" in text
        assert "U(i-1,j+1)" in text


class TestUnrollAndJam:
    def test_unrolled_body(self):
        text = emit(kernels.PURDUE_PROBLEM9, outputs={"T"},
                    unroll_jam=2)
        assert "unroll-and-jam by 2" in text
        assert "T(i+1,j)" in text  # the jammed copy
        assert "remainder iterations" in text

    def test_no_unroll_below_o4(self):
        text = emit(kernels.PURDUE_PROBLEM9, level="O2", outputs={"T"})
        assert "unroll-and-jam" not in text

    def test_unroll_4_copies(self):
        text = emit(kernels.PURDUE_PROBLEM9, outputs={"T"},
                    unroll_jam=4)
        assert "T(i+3,j)" in text


class TestConstructs:
    def test_do_loop_wrapper(self):
        src = """
        REAL A(32,32)
        DO K = 1, 10
          A = A + 1.0
        ENDDO
        """
        text = emit(src, outputs={"A"}, n=32)
        assert "DO K = 1, 10" in text

    def test_if_condition(self):
        src = """
        REAL A(32,32)
        IF (X < 1) THEN
          A = 1.0
        ELSE
          A = 2.0
        ENDIF
        """
        text = emit(src, outputs={"A"}, n=32)
        assert "IF ((X .LT. 1)) THEN" in text
        assert "ELSE" in text

    def test_masked_statement(self):
        src = """
        REAL A(32,32), U(32,32)
        WHERE (U > 0) A = U
        """
        text = emit(src, outputs={"A"}, n=32)
        assert "LOGICAL MASK" in text
        assert "IF (MASK" in text

    def test_reduction_allreduce(self):
        src = """
        REAL A(32,32), OUT(32,32)
        S = SUM(A * A)
        OUT = OUT + S
        """
        text = emit(src, outputs={"OUT"}, n=32)
        assert "rpart1 = rpart1 + (A(i,j) * A(i,j))" in text
        assert "CALL MPI_ALLREDUCE(rpart1, rglob1" in text
        assert "MPI_SUM" in text
        assert "S = rglob1" in text

    def test_maxval_reduction(self):
        src = """
        REAL A(32,32), OUT(32,32)
        S = MAXVAL(A)
        OUT = OUT + S
        """
        text = emit(src, outputs={"OUT"}, n=32)
        assert "MPI_MAX" in text
        assert "-HUGE(1.0)" in text

    def test_eoshift_boundary(self):
        src = """
        REAL A(32,32), U(32,32)
        A = EOSHIFT(U,SHIFT=1,BOUNDARY=3.5,DIM=1)
        """
        text = emit(src, outputs={"A"}, n=32)
        assert "BOUNDARY=3.5" in text


class TestEmissionFuzz:
    """Emission must render any compilable subset program."""

    def test_random_programs_emit(self):
        from repro.testing import random_program
        from repro.compiler import compile_hpf
        for seed in range(25):
            prog = random_program(seed)
            for level in ("O0", "O4"):
                cp = compile_hpf(prog.source, bindings=prog.bindings,
                                 level=level, outputs=set(prog.arrays))
                text = cp.emit_fortran()
                assert text.startswith("      SUBROUTINE")
                assert text.rstrip().endswith("END")

    def test_extension_options_emit(self):
        from repro.testing import random_program
        from repro.compiler import compile_hpf
        prog = random_program(3)
        cp = compile_hpf(prog.source, bindings=prog.bindings, level="O4",
                         outputs=set(prog.arrays), overlap_comm=True,
                         hoist_comm=True, cse=True)
        assert cp.emit_fortran()
