"""Elementwise intrinsics and exponentiation in stencil statements.

Supports the paper's point that the optimizations "benefit those
computations that only slightly resemble stencils" — no pattern is
matched, so arbitrary elementwise structure rides along.
"""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.errors import SemanticError
from repro.frontend import parse_program
from repro.ir.nodes import Intrinsic
from repro.machine import Machine
from repro.runtime.reference import evaluate


def grid(n=16, seed=0):
    return np.abs(np.random.default_rng(seed).standard_normal(
        (n, n))).astype(np.float32) + 0.5


def check(src, out, inputs, levels=("O0", "O2", "O4")):
    ref = evaluate(parse_program(src, bindings={"N": 16}),
                   inputs=inputs)[out]
    for level in levels:
        cp = compile_hpf(src, bindings={"N": 16}, level=level,
                         outputs={out})
        res = cp.run(Machine(grid=(2, 2)), inputs=inputs)
        np.testing.assert_allclose(res.arrays[out], ref, rtol=1e-5,
                                   err_msg=level)
    return cp


class TestParsing:
    def test_intrinsic_node(self):
        p = parse_program("REAL A(4), B(4)\nA = SQRT(ABS(B))")
        rhs = p.body[0].rhs
        assert isinstance(rhs, Intrinsic) and rhs.name == "SQRT"
        assert isinstance(rhs.args[0], Intrinsic)

    def test_min_max_variadic(self):
        p = parse_program("REAL A(4), B(4), C(4)\nA = MAX(B, C, 0.0)")
        assert len(p.body[0].rhs.args) == 3

    def test_min_needs_two_args(self):
        with pytest.raises(SemanticError):
            parse_program("REAL A(4), B(4)\nA = MIN(B)")

    def test_power_operator(self):
        p = parse_program("X = 2 ** 3 ** 2")  # right associative
        assert str(p.body[0].rhs) == "2 ** 3 ** 2"

    def test_power_precedence(self):
        p = parse_program("X = 2 * 3 ** 2")
        rhs = p.body[0].rhs
        assert rhs.op == "*" and rhs.right.op == "**"


class TestPipeline:
    def test_gradient_magnitude(self):
        # |grad|^2 via squared central differences — stencil + ** + SQRT
        src = """
        REAL G(16,16), U(16,16)
        G = SQRT( (CSHIFT(U,1,1) - CSHIFT(U,-1,1)) ** 2
     &          + (CSHIFT(U,1,2) - CSHIFT(U,-1,2)) ** 2 )
        """
        cp = check(src, "G", {"U": grid()})
        assert cp.report.overlap_shifts == 4  # still minimal comm

    def test_flux_limiter_min_max(self):
        src = """
        REAL L(16,16), U(16,16)
        L = MAX(0.0, MIN(1.0, CSHIFT(U,1,1) - U))
        """
        check(src, "L", {"U": grid(seed=1)})

    def test_exponential_decay(self):
        src = """
        REAL D(16,16), U(16,16)
        D = EXP(-(ABS(U))) * CSHIFT(U,1,2)
        """
        check(src, "D", {"U": grid(seed=2)})

    def test_log_residual(self):
        src = """
        REAL R(16,16), U(16,16)
        R = LOG(ABS(U) + 1.0) + CSHIFT(U,-1,1)
        """
        check(src, "R", {"U": grid(seed=3)})

    def test_intrinsics_fuse(self):
        src = """
        REAL A(16,16), B(16,16), U(16,16)
        A = ABS(CSHIFT(U,1,1))
        B = A + SQRT(ABS(U))
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"A", "B"})
        assert cp.report.loop_nests == 1

    def test_flops_weighted(self):
        from repro.passes.memopt import analyze_nest, profile_nest
        from repro.compiler.plan import NestStmt
        from repro.ir.nodes import OffsetRef
        cheap = [NestStmt("T", Intrinsic("ABS",
                                         (OffsetRef("U", (0, 0)),)))]
        costly = [NestStmt("T", Intrinsic("EXP",
                                          (OffsetRef("U", (0, 0)),)))]
        rank = lambda n: 2
        assert profile_nest(costly, rank).flops > \
            profile_nest(cheap, rank).flops


class TestScalarContext:
    def test_scalar_intrinsics(self):
        src = """
        REAL A(16,16)
        S = MAX(2.0, 3.0)
        A = A + S ** 2
        """
        u = grid(seed=4)
        ref = evaluate(parse_program(src, bindings={"N": 16}),
                       inputs={"A": u})["A"]
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"A"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"A": u})
        np.testing.assert_allclose(res.arrays["A"], ref, rtol=1e-6)
