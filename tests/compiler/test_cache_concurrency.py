"""Plan-cache concurrency: threaded LRU access and multi-process
persistent-cache races.

The in-memory :class:`PlanCache` is shared (``DEFAULT_CACHE``, threaded
experiment drivers), so its LRU bookkeeping and stats counters must be
atomic under contention — before the lock, concurrent ``put`` calls
could lose entries mid-eviction and concurrent ``get`` calls dropped
counter increments.  The :class:`PersistentPlanCache` is shared across
*processes*; its reads must tolerate racing atomic writers (a reader can
catch the entry file mid-``os.replace``) and converge on exactly one
durable entry per key.
"""

from __future__ import annotations

import multiprocessing
import threading

from repro.compiler import PersistentPlanCache, PlanCache, compile_hpf
from repro.kernels import KERNELS

SPEC = KERNELS["five_point"]


def _compile(cache, n=12):
    return compile_hpf(SPEC.source, bindings={"N": n},
                       outputs=set(SPEC.outputs), cache=cache)


class TestThreadedPlanCache:
    N_THREADS = 8
    OPS_PER_THREAD = 200

    def test_concurrent_get_put_loses_nothing(self):
        """8 threads hammer one cache over disjoint key ranges; every
        thread's entries must survive (maxsize is never exceeded, so an
        entry can only vanish through a lost update) and the counters
        must sum to exactly the number of operations issued."""
        nkeys = 4  # per thread
        cache = PlanCache(maxsize=self.N_THREADS * nkeys)
        program = object()  # the cache never inspects entries
        errors = []
        start = threading.Barrier(self.N_THREADS)

        def hammer(tid):
            try:
                start.wait()
                keys = [f"k{tid}-{i}" for i in range(nkeys)]
                for op in range(self.OPS_PER_THREAD):
                    key = keys[op % nkeys]
                    if cache.get(key) is None:
                        cache.put(key, program)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(tid,))
                   for tid in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) == self.N_THREADS * nkeys
        for tid in range(self.N_THREADS):
            for i in range(nkeys):
                assert cache.get(f"k{tid}-{i}") is program
        # every get was either a hit or a miss, every miss was followed
        # by a put: hits + misses == ops issued (modulo the final
        # verification gets, counted explicitly)
        ops = self.N_THREADS * self.OPS_PER_THREAD
        verification_gets = self.N_THREADS * nkeys
        assert cache.stats.hits + cache.stats.misses == \
            ops + verification_gets
        assert cache.stats.evictions == 0

    def test_concurrent_invalidate_is_consistent(self):
        cache = PlanCache(maxsize=64)
        for i in range(32):
            cache.put(f"k{i}", object())
        dropped = []
        start = threading.Barrier(4)

        def clear():
            start.wait()
            dropped.append(cache.invalidate())

        threads = [threading.Thread(target=clear) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # the 32 entries are dropped exactly once between the racers
        assert sum(dropped) == 32
        assert cache.stats.invalidations == 32
        assert len(cache) == 0

    def test_threaded_compile_same_kernel(self):
        """End-to-end: concurrent compile_hpf calls sharing one cache
        must each get a usable program and account every lookup."""
        cache = PlanCache()
        results = [None] * self.N_THREADS
        start = threading.Barrier(self.N_THREADS)

        def compile_one(tid):
            start.wait()
            results[tid] = _compile(cache)

        threads = [threading.Thread(target=compile_one, args=(tid,))
                   for tid in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is not None for r in results)
        assert len(cache) == 1
        assert cache.stats.hits + cache.stats.misses == self.N_THREADS


def _persistent_worker(path, n, out_q):
    try:
        cache = PersistentPlanCache(path)
        program = _compile(cache, n=n)
        out_q.put(("ok", program.plan is not None,
                   cache.stats.hits, cache.stats.misses))
    except BaseException as exc:  # pragma: no cover
        out_q.put(("error", repr(exc), 0, 0))


class TestMultiprocessPersistentCache:
    N_PROCS = 6

    def test_racing_processes_one_durable_entry(self, tmp_path):
        """N processes compile the same kernel against one cache
        directory at once.  All must succeed — a reader catching a
        racing writer mid-rename retries and at worst recompiles — and
        exactly one durable entry file must remain, with no temp-file
        litter."""
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        out_q = ctx.Queue()
        procs = [ctx.Process(target=_persistent_worker,
                             args=(str(tmp_path), 12, out_q))
                 for _ in range(self.N_PROCS)]
        for p in procs:
            p.start()
        replies = [out_q.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        assert all(r[0] == "ok" for r in replies), replies
        assert all(r[1] for r in replies)
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        assert list(tmp_path.glob("*.tmp")) == []
        # the entry is immediately usable by a fresh cache object
        cache = PersistentPlanCache(tmp_path)
        assert _compile(cache, n=12) is not None
        assert cache.stats.hits == 1

    def test_reader_tolerates_truncated_then_valid_entry(self, tmp_path):
        """Direct simulation of the mid-rename window: the first read
        attempt sees a truncated document, the retry sees the complete
        one — the lookup must hit, not crash or miss."""
        cache = PersistentPlanCache(tmp_path)
        _compile(cache, n=12)  # miss + durable put
        entry = next(tmp_path.glob("*.json"))
        good = entry.read_text()

        real_read_text = type(entry).read_text
        calls = {"n": 0}

        def flaky_read_text(self, *a, **kw):
            if self == entry:
                calls["n"] += 1
                if calls["n"] == 1:
                    return good[: len(good) // 2]
            return real_read_text(self, *a, **kw)

        try:
            type(entry).read_text = flaky_read_text
            hits_before = cache.stats.hits
            assert cache.get(entry.stem) is not None
        finally:
            type(entry).read_text = real_read_text
        assert calls["n"] == 2  # retried exactly once
        assert cache.stats.hits == hits_before + 1
