"""Communication/computation overlap tests (``overlap_comm=True``).

The executor splits each nest into the interior (whose stencil reads
touch no overlap cell) and boundary strips, and credits each PE with
``min(comm, interior)`` — the time hidden behind the messages.
Correctness must be bit-identical; only the modelled timeline changes.
"""

import numpy as np
import pytest

from repro import kernels
from repro.compiler import compile_hpf
from repro.compiler.plan import OverlappedOp
from repro.frontend import parse_program
from repro.machine import Machine
from repro.runtime.reference import evaluate


def compiled(overlap, n=64, level="O4", src=None, outputs=None):
    return compile_hpf(src or kernels.PURDUE_PROBLEM9,
                       bindings={"N": n}, level=level,
                       outputs=outputs or {"T"}, overlap_comm=overlap)


class TestPlanStructure:
    def test_overlapped_op_created(self):
        cp = compiled(True)
        assert cp.plan.count_ops(OverlappedOp) == 1
        ovl = next(op for op in cp.plan.ops
                   if isinstance(op, OverlappedOp))
        assert len(ovl.comm_ops) == 4
        assert len(ovl.nest.statements) == 7

    def test_off_by_default(self):
        cp = compiled(False)
        assert cp.plan.count_ops(OverlappedOp) == 0

    def test_describe_plan_renders(self):
        from repro.analysis.report import describe_plan
        text = describe_plan(compiled(True).plan)
        assert "overlap communication with interior computation" in text

    def test_fortran_emission(self):
        text = compiled(True).emit_fortran()
        assert "CALL OVERLAP_SHIFT_START(" in text
        assert "CALL OVERLAP_SHIFT_WAIT()" in text


class TestCorrectness:
    def test_identical_results(self):
        u = np.random.default_rng(0).standard_normal(
            (64, 64)).astype(np.float32)
        base = compiled(False).run(Machine(grid=(2, 2)),
                                   inputs={"U": u})
        over = compiled(True).run(Machine(grid=(2, 2)), inputs={"U": u})
        np.testing.assert_array_equal(base.arrays["T"], over.arrays["T"])

    @pytest.mark.parametrize("src,out,inp", [
        (kernels.FIVE_POINT_ARRAY_SYNTAX, "DST", "SRC"),
        (kernels.NINE_POINT_CSHIFT, "DST", "SRC"),
        (kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX, "DST", "SRC"),
    ])
    def test_matches_reference(self, src, out, inp):
        n = 32
        u = np.random.default_rng(1).standard_normal(
            (n, n)).astype(np.float32)
        scalars = {f"C{i}": 1.0 for i in range(1, 10)}
        scalars.update({f"W{i}": 1.0 for i in range(1, 26)})
        ref = evaluate(parse_program(src, bindings={"N": n}),
                       inputs={inp: u}, scalars=scalars)[out]
        cp = compiled(True, n=n, src=src, outputs={out})
        res = cp.run(Machine(grid=(2, 2)), inputs={inp: u},
                     scalars=scalars)
        np.testing.assert_allclose(res.arrays[out], ref, rtol=1e-5)

    def test_small_blocks_all_boundary(self):
        # 8x8 on 2x2 with radius-2 reach: interior still exists (4x4
        # block minus 2 on each side would be empty -> all boundary)
        n = 8
        u = np.random.default_rng(2).standard_normal(
            (n, n)).astype(np.float32)
        w = {f"W{i}": 1.0 for i in range(1, 26)}
        ref = evaluate(parse_program(kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX,
                                     bindings={"N": n}),
                       inputs={"SRC": u}, scalars=w)["DST"]
        cp = compiled(True, n=n, src=kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX,
                      outputs={"DST"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"SRC": u}, scalars=w)
        np.testing.assert_allclose(res.arrays["DST"], ref, rtol=1e-5)


class TestTimeline:
    def test_modelled_time_improves(self):
        times = {}
        for overlap in (False, True):
            res = compiled(overlap, n=256).run(
                Machine(grid=(2, 2), keep_message_log=False))
            times[overlap] = res.modelled_time
        assert times[True] < times[False]

    def test_saving_bounded_by_comm(self):
        base = compiled(False, n=256).run(
            Machine(grid=(2, 2), keep_message_log=False))
        over = compiled(True, n=256).run(
            Machine(grid=(2, 2), keep_message_log=False))
        saved = base.modelled_time - over.modelled_time
        comm = base.report.pe_comm_times[0]
        assert 0 < saved <= comm + 1e-12

    def test_messages_unchanged(self):
        base = compiled(False).run(Machine(grid=(2, 2)))
        over = compiled(True).run(Machine(grid=(2, 2)))
        assert base.report.messages == over.report.messages

    def test_loop_points_unchanged(self):
        # interior + strips must partition the compute box exactly
        base = compiled(False).run(Machine(grid=(2, 2)))
        over = compiled(True).run(Machine(grid=(2, 2)))
        assert base.report.loop_points == over.report.loop_points


class TestInsideTimeLoop:
    def test_jacobi_with_overlap(self):
        src = """
        REAL U(32,32), T(32,32)
        DO K = 1, 4
          T = 0.25 * (CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &              + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
          U = T
        ENDDO
        """
        u = np.random.default_rng(3).standard_normal(
            (32, 32)).astype(np.float32)
        ref = evaluate(parse_program(src, bindings={"N": 32}),
                       inputs={"U": u})["U"]
        cp = compile_hpf(src, bindings={"N": 32}, level="O4",
                         outputs={"U"}, overlap_comm=True)
        assert cp.plan.count_ops(OverlappedOp) == 1  # inside the DO
        res = cp.run(Machine(grid=(2, 2)), inputs={"U": u})
        np.testing.assert_allclose(res.arrays["U"], ref, rtol=1e-5)


class TestSplitHazard:
    """Regression: a statement reading its own LHS at a nonzero offset
    has whole-RHS-snapshot semantics that iteration-space splitting
    would violate (found by the differential fuzzer)."""

    SELF_READ = """
    REAL A(16,16), B(16,16)
    A = 1.72 * CSHIFT(A,SHIFT=2,DIM=1) + B
    """

    def test_self_displaced_read_not_wrapped(self):
        cp = compile_hpf(self.SELF_READ, bindings={"N": 16}, level="O4",
                         outputs={"A"}, overlap_comm=True)
        assert cp.plan.count_ops(OverlappedOp) == 0

    def test_self_displaced_read_correct(self):
        a = np.random.default_rng(5).standard_normal(
            (16, 16)).astype(np.float32)
        b = np.random.default_rng(6).standard_normal(
            (16, 16)).astype(np.float32)
        ref = evaluate(parse_program(self.SELF_READ, bindings={"N": 16}),
                       inputs={"A": a, "B": b})["A"]
        cp = compile_hpf(self.SELF_READ, bindings={"N": 16}, level="O4",
                         outputs={"A"}, overlap_comm=True)
        res = cp.run(Machine(grid=(2, 2)), inputs={"A": a, "B": b})
        np.testing.assert_allclose(res.arrays["A"], ref, rtol=1e-6)

    def test_aligned_self_read_still_wrapped(self):
        src = """
        REAL A(16,16), B(16,16)
        A = A + CSHIFT(B,SHIFT=1,DIM=1)
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"A"}, overlap_comm=True)
        assert cp.plan.count_ops(OverlappedOp) == 1
