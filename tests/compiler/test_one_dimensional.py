"""1-D stencils end to end (BLOCK over a 1-D processor grid).

The paper's machinery is dimension-generic; these tests pin the 1-D
degenerate case: single-dim shifts, unioning, halos, reductions.
"""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.frontend import parse_program
from repro.machine import Machine
from repro.runtime.reference import evaluate

TRIDIAG = """
      REAL, DIMENSION(N) :: U, T
!HPF$ DISTRIBUTE U(BLOCK)
!HPF$ ALIGN T WITH U
      T = 0.25 * CSHIFT(U,-1,1) + 0.5 * U + 0.25 * CSHIFT(U,1,1)
"""


def vec(n=32, seed=0):
    return np.random.default_rng(seed).standard_normal(n).astype(
        np.float32)


class TestOneD:
    def test_all_levels_correct(self):
        u = vec()
        ref = evaluate(parse_program(TRIDIAG, bindings={"N": 32}),
                       inputs={"U": u})["T"]
        for level in ("O0", "O1", "O2", "O3", "O4"):
            cp = compile_hpf(TRIDIAG, bindings={"N": 32}, level=level,
                             outputs={"T"})
            res = cp.run(Machine(grid=(4,)), inputs={"U": u})
            np.testing.assert_allclose(res.arrays["T"], ref, rtol=1e-5,
                                       err_msg=level)

    def test_two_messages_per_pe(self):
        cp = compile_hpf(TRIDIAG, bindings={"N": 32}, level="O4",
                         outputs={"T"})
        res = cp.run(Machine(grid=(4,)), inputs={"U": vec()})
        assert res.report.messages == 2 * 4

    def test_single_pe(self):
        cp = compile_hpf(TRIDIAG, bindings={"N": 32}, level="O4",
                         outputs={"T"})
        res = cp.run(Machine(grid=(1,)), inputs={"U": vec()})
        assert res.report.messages == 0  # wraps are self-copies

    def test_radius3_smoother(self):
        src = """
        REAL U(64), T(64)
        !HPF$ DISTRIBUTE U(BLOCK)
        !HPF$ ALIGN T WITH U
        T = CSHIFT(U,-3,1) + CSHIFT(U,-1,1) + U
     &    + CSHIFT(U,1,1) + CSHIFT(U,3,1)
        """
        u = vec(64, seed=1)
        ref = evaluate(parse_program(src, bindings={"N": 64}),
                       inputs={"U": u})["T"]
        cp = compile_hpf(src, bindings={"N": 64}, level="O4",
                         outputs={"T"})
        # unioning: one shift of amount 3 per direction
        assert cp.report.overlap_shifts == 2
        res = cp.run(Machine(grid=(4,)), inputs={"U": u})
        np.testing.assert_allclose(res.arrays["T"], ref, rtol=1e-5)

    def test_1d_reduction(self):
        src = """
        REAL U(32), T(32)
        !HPF$ DISTRIBUTE U(BLOCK)
        !HPF$ ALIGN T WITH U
        S = SUM(U * U)
        T = U / SQRT(S)
        """
        u = vec(seed=2)
        cp = compile_hpf(src, bindings={"N": 32}, level="O4",
                         outputs={"T"})
        res = cp.run(Machine(grid=(4,)), inputs={"U": u})
        expected = u / np.sqrt((u.astype(np.float64) ** 2).sum())
        np.testing.assert_allclose(res.arrays["T"], expected, rtol=1e-4)

    def test_uneven_1d_blocks(self):
        u = vec(n=35, seed=3)
        ref = evaluate(parse_program(TRIDIAG, bindings={"N": 35}),
                       inputs={"U": u})["T"]
        cp = compile_hpf(TRIDIAG, bindings={"N": 35}, level="O4",
                         outputs={"T"})
        res = cp.run(Machine(grid=(4,)), inputs={"U": u})
        np.testing.assert_allclose(res.arrays["T"], ref, rtol=1e-5)
