"""Plan-cache behaviour: keys, hits, LRU eviction, invalidation,
tracer surfacing, and equivalence of cached results."""

import numpy as np
import pytest

from repro.compiler import PlanCache, cache_key, compile_hpf
from repro.compiler.options import CompilerOptions
from repro.kernels import KERNELS, compile_kernel
from repro.machine import Machine
from repro.obs import Tracer

SPEC = KERNELS["purdue9"]


def _compile(cache, bindings=None, level="O4", **options):
    return compile_hpf(SPEC.source, bindings=bindings or {"N": 16},
                       level=level, outputs=set(SPEC.outputs),
                       cache=cache, **options)


class TestHitsAndMisses:
    def test_hit_returns_same_object(self):
        cache = PlanCache()
        first = _compile(cache)
        second = _compile(cache)
        assert second is first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_no_cache_recompiles(self):
        assert _compile(None) is not _compile(None)

    def test_distinct_bindings_miss(self):
        cache = PlanCache()
        assert _compile(cache) is not _compile(cache,
                                               bindings={"N": 32})

    def test_distinct_level_miss(self):
        cache = PlanCache()
        assert _compile(cache, level="O2") is not _compile(cache,
                                                           level="O4")

    def test_distinct_option_miss(self):
        cache = PlanCache()
        assert _compile(cache) is not _compile(cache, cse=True)

    def test_binding_order_insensitive(self):
        src = SPEC.source.replace("DIMENSION(N,N)", "DIMENSION(N,M)")
        cache = PlanCache()
        a = compile_hpf(src, bindings={"N": 16, "M": 12},
                        outputs=set(SPEC.outputs), cache=cache)
        b = compile_hpf(src, bindings={"M": 12, "N": 16},
                        outputs=set(SPEC.outputs), cache=cache)
        assert a is b

    def test_cached_program_runs_identically(self):
        cache = PlanCache()
        cold = _compile(cache)
        warm = _compile(cache)
        results = []
        for prog in (cold, warm):
            machine = Machine(grid=(2, 2))
            rng = np.random.default_rng(3)
            inputs = {"U": rng.standard_normal((16, 16))}
            results.append(prog.run(machine, inputs=inputs))
        np.testing.assert_array_equal(results[0].arrays["T"],
                                      results[1].arrays["T"])
        assert (results[0].report.summary()
                == results[1].report.summary())


class TestInvalidation:
    def test_invalidate_all(self):
        cache = PlanCache()
        first = _compile(cache)
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        assert _compile(cache) is not first

    def test_invalidate_one_key(self):
        cache = PlanCache()
        _compile(cache)
        key = cache_key(SPEC.source, "MAIN", {"N": 16},
                        CompilerOptions.make("O4", set(SPEC.outputs)))
        assert cache.invalidate(key) == 1
        assert cache.invalidate(key) == 0  # already gone

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        a = _compile(cache, bindings={"N": 8})
        _compile(cache, bindings={"N": 12})
        _compile(cache, bindings={"N": 16})  # evicts N=8
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        assert _compile(cache, bindings={"N": 8}) is not a

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestSurfacing:
    def test_tracer_spans_carry_counters(self):
        cache = PlanCache()
        tr_miss, tr_hit = Tracer(), Tracer()
        _compile(cache, tracer=tr_miss)
        _compile(cache, tracer=tr_hit)
        miss = tr_miss.find("plan-cache")
        hit = tr_hit.find("plan-cache")
        assert miss.attrs["result"] == "miss"
        assert hit.attrs["result"] == "hit"
        assert hit.counters["cache_hits"] == 1.0
        assert hit.counters["cache_misses"] == 1.0
        assert hit.counters["cache_hit_rate"] == 0.5

    def test_machine_fingerprint_distinguishes_config(self):
        base = Machine(grid=(2, 2)).fingerprint()
        assert Machine(grid=(4, 1)).fingerprint() != base
        assert Machine(grid=(2, 2),
                       memory_per_pe=1 << 20).fingerprint() != base
        opts = CompilerOptions.make("O4", {"T"})
        with_machine = cache_key(SPEC.source, "MAIN", {"N": 16}, opts,
                                 machine_fingerprint=base)
        without = cache_key(SPEC.source, "MAIN", {"N": 16}, opts)
        assert with_machine != without

    def test_compile_kernel_helper_uses_cache(self):
        cache = PlanCache()
        a = compile_kernel("purdue9", bindings={"N": 16}, cache=cache)
        b = compile_kernel("purdue9", bindings={"N": 16}, cache=cache)
        assert a is b
        assert cache.stats.hits == 1


class TestWarmHitLatency:
    def test_warm_hit_is_fast(self):
        """The acceptance bar is <0.1 ms; allow slack for CI jitter
        while still catching an accidental repipeline on the hot path
        (a real miss costs tens of milliseconds)."""
        import time

        cache = PlanCache()
        _compile(cache)
        best = float("inf")
        for _ in range(20):
            t0 = time.perf_counter()
            _compile(cache)
            best = min(best, time.perf_counter() - t0)
        assert best < 2e-3, f"warm hit took {best * 1e3:.3f} ms"


class TestBindingCanonicalization:
    """Regression: ``np.int64(512)`` and ``512`` used to hash to
    *different* keys (their ``repr`` differs), so sweeps driven by
    ``np.arange`` never hit the cache; and a float or bool binding
    silently produced a unique key instead of failing."""

    OPTS = CompilerOptions()

    def _key(self, bindings):
        return cache_key(SPEC.source, "MAIN", bindings, self.OPTS)

    def test_numpy_int_hashes_like_python_int(self):
        import numpy as np
        assert self._key({"N": np.int64(512)}) == self._key({"N": 512})
        assert self._key({"N": np.int32(512)}) == self._key({"N": 512})

    def test_integral_float_hashes_like_int(self):
        import numpy as np
        assert self._key({"N": 512.0}) == self._key({"N": 512})
        assert self._key({"N": np.float64(512.0)}) == \
            self._key({"N": 512})

    def test_non_integral_float_rejected(self):
        with pytest.raises(TypeError, match="not an integral value"):
            self._key({"N": 512.5})

    def test_numpy_non_integral_rejected(self):
        import numpy as np
        with pytest.raises(TypeError, match="not an integral value"):
            self._key({"N": np.float32(12.25)})

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            self._key({"N": True})

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError, match="must be integers"):
            self._key({"N": "512"})
        with pytest.raises(TypeError, match="must be integers"):
            self._key({"N": [16]})

    def test_numpy_bindings_share_cache_entries(self):
        import numpy as np
        cache = PlanCache()
        a = _compile(cache, bindings={"N": np.int64(16)})
        b = _compile(cache, bindings={"N": 16})
        assert a is b
        assert cache.stats.hits == 1
