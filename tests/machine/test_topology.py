"""Processor grid tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.machine.topology import ProcessorGrid


class TestGrid:
    def test_size(self):
        assert ProcessorGrid((2, 3)).size == 6

    def test_rank_coords_roundtrip(self):
        g = ProcessorGrid((2, 3))
        for r in g.ranks():
            assert g.rank(g.coords(r)) == r

    def test_row_major_order(self):
        g = ProcessorGrid((2, 3))
        assert g.coords(0) == (0, 0)
        assert g.coords(1) == (0, 1)
        assert g.coords(3) == (1, 0)

    def test_neighbor_wraps(self):
        g = ProcessorGrid((2, 2))
        # rank 0 = (0,0); +1 along dim 0 -> (1,0) = rank 2
        assert g.neighbor(0, 0, +1) == 2
        # -1 along dim 0 wraps to (1,0) too on a 2-torus
        assert g.neighbor(0, 0, -1) == 2
        assert g.neighbor(0, 1, +1) == 1

    def test_one_wide_dim_self_neighbor(self):
        g = ProcessorGrid((1, 4))
        assert g.neighbor(0, 0, +1) == 0

    def test_bad_shape(self):
        with pytest.raises(MachineError):
            ProcessorGrid((0, 2))

    def test_bad_rank(self):
        with pytest.raises(MachineError):
            ProcessorGrid((2,)).coords(5)

    def test_bad_direction(self):
        with pytest.raises(MachineError):
            ProcessorGrid((2,)).neighbor(0, 0, 2)

    def test_all_coords(self):
        g = ProcessorGrid((2, 2))
        assert len(g.all_coords()) == 4


grids = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)


class TestGridProperties:
    @given(grids, st.data())
    def test_roundtrip(self, shape, data):
        g = ProcessorGrid(shape)
        r = data.draw(st.integers(0, g.size - 1))
        assert g.rank(g.coords(r)) == r

    @given(grids, st.data())
    def test_neighbor_inverse(self, shape, data):
        g = ProcessorGrid(shape)
        r = data.draw(st.integers(0, g.size - 1))
        d = data.draw(st.integers(0, g.ndim - 1))
        assert g.neighbor(g.neighbor(r, d, +1), d, -1) == r

    @given(grids, st.data())
    def test_neighbor_cycles(self, shape, data):
        g = ProcessorGrid(shape)
        r = data.draw(st.integers(0, g.size - 1))
        d = data.draw(st.integers(0, g.ndim - 1))
        cur = r
        for _ in range(shape[d]):
            cur = g.neighbor(cur, d, +1)
        assert cur == r
