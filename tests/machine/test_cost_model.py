"""Cost model unit tests."""

import pytest

from repro.machine.cost_model import (
    CostModel, CostReport, LoopStats, SP2_COST_MODEL,
)


class TestPrimitives:
    def test_msg_time_linear(self):
        m = CostModel(alpha=1e-4, beta=1e-8)
        assert m.msg_time(0) == pytest.approx(1e-4)
        assert m.msg_time(10 ** 8) == pytest.approx(1e-4 + 1.0)

    def test_copy_time_scales_with_element_size(self):
        m = SP2_COST_MODEL
        assert m.copy_time(1000, 8) == pytest.approx(
            2 * m.copy_time(1000, 4))

    def test_loop_time_components(self):
        m = CostModel(mem_load=10e-9, cached_load=1e-9, store=2e-9,
                      flop=1e-9, loop_overhead=0.5e-9)
        stats = LoopStats(points=1000, statements=2, mem_loads=3,
                          cached_loads=5, stores=2, flops=4)
        per_point = 3 * 10e-9 + 5 * 1e-9 + 2 * 2e-9 + 4 * 1e-9 + 2 * 0.5e-9
        assert m.loop_time(stats) == pytest.approx(1000 * per_point)

    def test_overhead_factor(self):
        stats = LoopStats(points=100, mem_loads=1)
        assert SP2_COST_MODEL.loop_time(stats, 18.0) == pytest.approx(
            18 * SP2_COST_MODEL.loop_time(stats))


class TestCostReport:
    def test_modelled_time_is_max_over_pes(self):
        r = CostReport()
        r.ensure_pes(2)
        r.add_message(0, 100, SP2_COST_MODEL)
        r.add_message(1, 100, SP2_COST_MODEL)
        r.add_message(1, 100, SP2_COST_MODEL)
        assert r.modelled_time == pytest.approx(r.pe_times[1])
        assert r.pe_times[1] > r.pe_times[0]

    def test_comm_fraction_of_critical_pe(self):
        r = CostReport()
        r.ensure_pes(1)
        r.add_message(0, 1000, SP2_COST_MODEL)
        r.add_loop(0, LoopStats(points=10, mem_loads=1), SP2_COST_MODEL)
        assert 0 < r.comm_time_fraction < 1

    def test_counters_accumulate(self):
        r = CostReport()
        r.add_copy(0, 500, 4, SP2_COST_MODEL)
        r.add_copy(0, 500, 4, SP2_COST_MODEL)
        assert r.copies == 2
        assert r.copy_elements == 1000

    def test_loop_counters(self):
        r = CostReport()
        stats = LoopStats(points=100, mem_loads=2.0, cached_loads=3.0,
                          stores=1.0, flops=4.0)
        r.add_loop(0, stats, SP2_COST_MODEL)
        assert r.mem_loads == 200.0
        assert r.flops == 400.0

    def test_empty_report(self):
        r = CostReport()
        assert r.modelled_time == 0.0
        assert r.comm_time_fraction == 0.0

    def test_summary_keys(self):
        r = CostReport()
        keys = set(r.summary())
        assert {"modelled_time_s", "messages", "copies",
                "mem_loads"} <= keys


class TestMergeWorkerReports:
    """Ownership merge: each PE's rows come from its owning worker."""

    def _shard(self, owned, npes=4):
        r = CostReport()
        r.ensure_pes(npes)
        stats = LoopStats(points=10, mem_loads=2.0, stores=1.0, flops=3.0)
        for pe in owned:
            r.add_loop(pe, stats, SP2_COST_MODEL)
            r.add_message(pe, 64, SP2_COST_MODEL)
        r.add_copy(owned[0], 100, 8, SP2_COST_MODEL)
        return r

    def test_rows_taken_from_owner(self):
        a, b = self._shard([0, 2]), self._shard([1, 3])
        merged = CostReport.merge_worker_reports([a, b], [0, 1, 0, 1])
        assert merged.pe_times == [a.pe_times[0], b.pe_times[1],
                                   a.pe_times[2], b.pe_times[3]]
        assert merged.pe_flops == [a.pe_flops[0], b.pe_flops[1],
                                   a.pe_flops[2], b.pe_flops[3]]
        # int counters sum across shards
        assert merged.messages == 4
        assert merged.copies == 2
        assert merged.loop_points == 40
        # derived scalar totals fold the merged rows
        assert merged.flops == pytest.approx(sum(merged.pe_flops))

    def test_rejects_charge_on_non_owned_pe(self):
        a, b = self._shard([0, 2]), self._shard([1, 3])
        a.add_loop(1, LoopStats(points=1, flops=1.0), SP2_COST_MODEL)
        with pytest.raises(ValueError, match="does not own"):
            CostReport.merge_worker_reports([a, b], [0, 1, 0, 1])

    def test_single_worker_roundtrip(self):
        a = self._shard([0, 1, 2, 3])
        merged = CostReport.merge_worker_reports([a], [0, 0, 0, 0])
        assert merged.summary() == a.summary()
        assert merged.pe_times == a.pe_times


class TestPerPeRows:
    def test_scalar_counters_are_row_sums(self):
        r = CostReport()
        r.ensure_pes(2)
        stats = LoopStats(points=10, mem_loads=2.0, cached_loads=1.0,
                          stores=1.0, flops=4.0)
        r.add_loop(0, stats, SP2_COST_MODEL)
        r.add_loop(1, stats, SP2_COST_MODEL)
        assert r.pe_mem_loads == [20.0, 20.0]
        assert r.mem_loads == 40.0
        assert r.cached_loads == 20.0
        assert r.stores == 20.0
        assert r.flops == 80.0


class TestCalibration:
    """The documented relationships between the SP-2-class constants."""

    def test_copy_pair_weight(self):
        # two buffered copies per library shift cost about 2.5 memory
        # accesses per element in total
        m = SP2_COST_MODEL
        assert 2 * m.copy_elem == pytest.approx(2.5 * m.mem_load,
                                                rel=0.01)

    def test_memory_hierarchy_ordering(self):
        m = SP2_COST_MODEL
        assert m.mem_load > m.store > m.cached_load
        assert m.flop <= m.cached_load

    def test_message_dominated_by_latency_for_small_slabs(self):
        m = SP2_COST_MODEL
        # a 128-element REAL slab is still latency-dominated
        assert m.alpha > m.beta * 128 * 4
