"""Network simulation tests."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.cost_model import CostReport, SP2_COST_MODEL
from repro.machine.network import Network


def network(keep_log=True):
    report = CostReport()
    report.ensure_pes(4)
    return Network(SP2_COST_MODEL, report, keep_log=keep_log)


class TestSend:
    def test_payload_delivered_as_copy(self):
        net = network()
        payload = np.arange(8.0)
        received = net.send(0, 1, payload)
        np.testing.assert_array_equal(received, payload)
        payload[0] = 99.0
        assert received[0] == 0.0  # a real message is a copy

    def test_message_recorded(self):
        net = network()
        net.send(0, 1, np.zeros(4), tag="ovl:U")
        assert net.message_count == 1
        assert net.log[0].src == 0 and net.log[0].dst == 1
        assert net.log[0].nbytes == 32

    def test_self_send_is_copy_not_message(self):
        net = network()
        net.send(2, 2, np.zeros(16))
        assert net.message_count == 0
        assert net.report.copies == 1

    def test_zero_size_rejected(self):
        net = network()
        with pytest.raises(MachineError):
            net.send(0, 1, np.zeros(0))

    def test_sender_charged(self):
        net = network()
        net.send(3, 0, np.zeros(1000))
        assert net.report.pe_times[3] > 0
        assert net.report.pe_times[0] == 0

    def test_log_disabled(self):
        net = network(keep_log=False)
        net.send(0, 1, np.zeros(4))
        assert net.log == []
        assert net.message_count == 1

    def test_tag_filter(self):
        net = network()
        net.send(0, 1, np.zeros(4), tag="ovl:U:d1:+1")
        net.send(0, 1, np.zeros(4), tag="ovl:V:d2:-1")
        assert len(net.messages_with_tag("ovl:U")) == 1

    def test_noncontiguous_payload(self):
        net = network()
        a = np.arange(16.0).reshape(4, 4)
        received = net.send(0, 1, a[:, 1])  # strided column
        np.testing.assert_array_equal(received, a[:, 1])
