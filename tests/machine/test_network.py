"""Network simulation tests."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.cost_model import CostReport, SP2_COST_MODEL
from repro.machine.network import Network


def network(keep_log=True):
    report = CostReport()
    report.ensure_pes(4)
    return Network(SP2_COST_MODEL, report, keep_log=keep_log)


class TestSend:
    def test_payload_delivered_as_copy(self):
        net = network()
        payload = np.arange(8.0)
        received = net.send(0, 1, payload)
        np.testing.assert_array_equal(received, payload)
        payload[0] = 99.0
        assert received[0] == 0.0  # a real message is a copy

    def test_message_recorded(self):
        net = network()
        net.send(0, 1, np.zeros(4), tag="ovl:U")
        assert net.message_count == 1
        assert net.log[0].src == 0 and net.log[0].dst == 1
        assert net.log[0].nbytes == 32

    def test_self_send_is_copy_not_message(self):
        net = network()
        net.send(2, 2, np.zeros(16))
        assert net.message_count == 0
        assert net.report.copies == 1

    def test_zero_size_rejected(self):
        net = network()
        with pytest.raises(MachineError):
            net.send(0, 1, np.zeros(0))

    def test_sender_charged(self):
        net = network()
        net.send(3, 0, np.zeros(1000))
        assert net.report.pe_times[3] > 0
        assert net.report.pe_times[0] == 0

    def test_log_disabled(self):
        net = network(keep_log=False)
        net.send(0, 1, np.zeros(4))
        assert net.log == []
        assert net.message_count == 1

    def test_tag_filter(self):
        net = network()
        net.send(0, 1, np.zeros(4), tag="ovl:U:d1:+1")
        net.send(0, 1, np.zeros(4), tag="ovl:V:d2:-1")
        assert len(net.messages_with_tag("ovl:U")) == 1

    def test_noncontiguous_payload(self):
        net = network()
        a = np.arange(16.0).reshape(4, 4)
        received = net.send(0, 1, a[:, 1])  # strided column
        np.testing.assert_array_equal(received, a[:, 1])


class TestRecordBatch:
    def test_empty_batch_is_a_noop(self):
        net = network()
        net.record_batch([], itemsize=8)
        assert net.message_count == 0
        assert net.report.copies == 0
        assert net.log == []
        assert net.report.pe_times == [0.0] * 4

    def test_matches_per_record_accounting(self):
        batched, looped = network(), network()
        transfers = [(0, 1, 4), (1, 2, 16), (3, 0, 4)]
        batched.record_batch(transfers, itemsize=8, tag="ovl:U")
        for src, dst, nelems in transfers:
            looped.record(src, dst, nelems, 8, tag="ovl:U")
        assert batched.report.pe_times == looped.report.pe_times
        assert batched.report.messages == looped.report.messages
        assert batched.report.message_bytes == \
            looped.report.message_bytes
        assert [(m.src, m.dst, m.nbytes, m.tag) for m in batched.log] \
            == [(m.src, m.dst, m.nbytes, m.tag) for m in looped.log]

    def test_mixed_self_sends_become_copies(self):
        net = network()
        net.record_batch([(0, 1, 4), (2, 2, 16), (3, 3, 4), (1, 0, 4)],
                         itemsize=8)
        assert net.message_count == 2  # the two cross-PE transfers
        assert net.report.copies == 2  # the two self-sends
        assert net.report.copy_elements == 20
        # self-sends never appear in the message log
        assert {(m.src, m.dst) for m in net.log} == {(0, 1), (1, 0)}

    def test_zero_element_entry_rejected(self):
        net = network()
        with pytest.raises(MachineError, match="zero-size"):
            net.record_batch([(0, 1, 4), (1, 2, 0)], itemsize=8)

    def test_grows_report_to_batch_pes(self):
        report = CostReport()  # starts with no PEs at all
        net = Network(SP2_COST_MODEL, report, keep_log=False)
        net.record_batch([(5, 1, 4)], itemsize=8)
        assert len(report.pe_times) >= 6


class TestInstallWorkerLogs:
    def _log(self, net):
        return [(m.src, m.dst, m.nbytes, m.tag) for m in net.log]

    def test_adopts_agreeing_replicas(self):
        from repro.machine.network import MessageRecord
        net = network()
        replica = [MessageRecord(0, 1, 32, "ovl:U")]
        net.install_worker_logs([list(replica), list(replica)])
        assert self._log(net) == [(0, 1, 32, "ovl:U")]

    def test_rejects_divergent_replicas(self):
        from repro.machine.network import MessageRecord
        net = network()
        with pytest.raises(MachineError, match="diverged"):
            net.install_worker_logs(
                [[MessageRecord(0, 1, 32, "a")],
                 [MessageRecord(0, 2, 32, "a")]])

    def test_rejects_empty_replica_list(self):
        net = network()
        with pytest.raises(MachineError):
            net.install_worker_logs([])
