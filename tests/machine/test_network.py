"""Network simulation tests."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.cost_model import CostReport, SP2_COST_MODEL
from repro.machine.network import Network


def network(keep_log=True):
    report = CostReport()
    report.ensure_pes(4)
    return Network(SP2_COST_MODEL, report, keep_log=keep_log)


class TestSend:
    def test_payload_delivered_as_copy(self):
        net = network()
        payload = np.arange(8.0)
        received = net.send(0, 1, payload)
        np.testing.assert_array_equal(received, payload)
        payload[0] = 99.0
        assert received[0] == 0.0  # a real message is a copy

    def test_message_recorded(self):
        net = network()
        net.send(0, 1, np.zeros(4), tag="ovl:U")
        assert net.message_count == 1
        assert net.log[0].src == 0 and net.log[0].dst == 1
        assert net.log[0].nbytes == 32

    def test_self_send_is_copy_not_message(self):
        net = network()
        net.send(2, 2, np.zeros(16))
        assert net.message_count == 0
        assert net.report.copies == 1

    def test_zero_size_rejected(self):
        net = network()
        with pytest.raises(MachineError):
            net.send(0, 1, np.zeros(0))

    def test_sender_charged(self):
        net = network()
        net.send(3, 0, np.zeros(1000))
        assert net.report.pe_times[3] > 0
        assert net.report.pe_times[0] == 0

    def test_log_disabled(self):
        net = network(keep_log=False)
        net.send(0, 1, np.zeros(4))
        assert net.log == []
        assert net.message_count == 1

    def test_tag_filter(self):
        net = network()
        net.send(0, 1, np.zeros(4), tag="ovl:U:d1:+1")
        net.send(0, 1, np.zeros(4), tag="ovl:V:d2:-1")
        assert len(net.messages_with_tag("ovl:U")) == 1

    def test_noncontiguous_payload(self):
        net = network()
        a = np.arange(16.0).reshape(4, 4)
        received = net.send(0, 1, a[:, 1])  # strided column
        np.testing.assert_array_equal(received, a[:, 1])


class TestRecordBatch:
    def test_empty_batch_is_a_noop(self):
        net = network()
        net.record_batch([], itemsize=8)
        assert net.message_count == 0
        assert net.report.copies == 0
        assert net.log == []
        assert net.report.pe_times == [0.0] * 4

    def test_matches_per_record_accounting(self):
        batched, looped = network(), network()
        transfers = [(0, 1, 4), (1, 2, 16), (3, 0, 4)]
        batched.record_batch(transfers, itemsize=8, tag="ovl:U")
        for src, dst, nelems in transfers:
            looped.record(src, dst, nelems, 8, tag="ovl:U")
        assert batched.report.pe_times == looped.report.pe_times
        assert batched.report.messages == looped.report.messages
        assert batched.report.message_bytes == \
            looped.report.message_bytes
        assert [(m.src, m.dst, m.nbytes, m.tag) for m in batched.log] \
            == [(m.src, m.dst, m.nbytes, m.tag) for m in looped.log]

    def test_mixed_self_sends_become_copies(self):
        net = network()
        net.record_batch([(0, 1, 4), (2, 2, 16), (3, 3, 4), (1, 0, 4)],
                         itemsize=8)
        assert net.message_count == 2  # the two cross-PE transfers
        assert net.report.copies == 2  # the two self-sends
        assert net.report.copy_elements == 20
        # self-sends never appear in the message log
        assert {(m.src, m.dst) for m in net.log} == {(0, 1), (1, 0)}

    def test_zero_element_entry_rejected(self):
        net = network()
        with pytest.raises(MachineError, match="zero-size"):
            net.record_batch([(0, 1, 4), (1, 2, 0)], itemsize=8)

    def test_grows_report_to_batch_pes(self):
        report = CostReport()  # starts with no PEs at all
        net = Network(SP2_COST_MODEL, report, keep_log=False)
        net.record_batch([(5, 1, 4)], itemsize=8)
        assert len(report.pe_times) >= 6


class TestOwnershipGating:
    def _owned_net(self, owned):
        net = network()
        net.owned = owned.__contains__
        return net

    def test_non_owned_send_moves_data_without_charging(self):
        net = self._owned_net({1})
        received = net.send(0, 1, np.arange(4.0), tag="ovl:U")
        np.testing.assert_array_equal(received, np.arange(4.0))
        assert net.message_count == 0
        assert net.log == []
        assert net.report.pe_times == [0.0] * 4

    def test_owned_send_charges_and_logs(self):
        net = self._owned_net({0})
        net.send(0, 1, np.zeros(4), tag="ovl:U")
        assert net.message_count == 1
        assert net.report.pe_times[0] > 0

    def test_sequence_ticks_for_skipped_records(self):
        # two "workers" each owning half the sources must stamp the
        # records they do log with the same global positions
        a, b = self._owned_net({0}), self._owned_net({1})
        for net in (a, b):
            net.record(0, 1, 4, 8, tag="x")
            net.record(1, 0, 4, 8, tag="y")
        assert [m.seq for m in a.log] == [0]
        assert [m.seq for m in b.log] == [1]

    def test_self_send_gated_but_untracked(self):
        # self-sends are copies: gated by ownership, never sequenced
        net = self._owned_net({1})
        net.record(0, 0, 4, 8)
        net.record(1, 1, 4, 8)
        net.record(0, 1, 4, 8, tag="x")
        assert net.report.copies == 1
        assert net.log == []  # pe 0 not owned; its message skipped
        assert net._seq == 1

    def test_record_batch_matches_record_under_ownership(self):
        transfers = [(0, 1, 4), (1, 2, 16), (2, 2, 8), (3, 0, 4)]
        batched, looped = self._owned_net({1, 3}), self._owned_net({1, 3})
        batched.record_batch(transfers, itemsize=8, tag="ovl:U")
        for src, dst, nelems in transfers:
            looped.record(src, dst, nelems, 8, tag="ovl:U")
        assert batched.report.pe_times == looped.report.pe_times
        assert batched.report.messages == looped.report.messages
        assert [(m.src, m.dst, m.seq) for m in batched.log] == \
            [(m.src, m.dst, m.seq) for m in looped.log]
        assert batched._seq == looped._seq == 3


class TestAllreduceCharging:
    def test_logs_butterfly_rounds(self):
        net = network()
        net.allreduce(0, 4, tag="allreduce:SUM")
        assert net.message_count == 2  # ceil(log2 4) rounds
        assert all(m.tag == "allreduce:SUM" for m in net.log)
        assert all(m.src == 0 and m.nbytes == 8 for m in net.log)
        assert [m.dst for m in net.log] == [1, 2]

    def test_matches_legacy_per_round_charge(self):
        # the addend must be exactly msg_time(8) per round, as the old
        # unlogged reduction charging did
        net = network()
        net.allreduce(2, 4)
        expect = 2 * SP2_COST_MODEL.msg_time(8)
        assert net.report.pe_times[2] == expect
        assert net.report.pe_comm_times[2] == expect

    def test_partner_never_self_on_odd_counts(self):
        from repro.machine.network import butterfly_partner
        for npes in range(2, 12):
            rounds = (npes - 1).bit_length()
            for pe in range(npes):
                for rnd in range(rounds):
                    partner = butterfly_partner(pe, rnd, npes)
                    assert partner != pe
                    assert 0 <= partner < npes

    def test_single_pe_is_silent(self):
        net = network()
        net.allreduce(0, 1)
        assert net.message_count == 0
        assert net.report.pe_times == [0.0] * 4


class TestInstallWorkerLogs:
    def _rec(self, src, dst, seq, tag="ovl:U"):
        from repro.machine.network import MessageRecord
        return MessageRecord(src, dst, 32, tag, seq=seq)

    def _log(self, net):
        return [(m.src, m.dst, m.nbytes, m.tag) for m in net.log]

    def test_splices_partial_logs_by_sequence(self):
        net = network()
        net.install_worker_logs([
            [self._rec(0, 1, 0), self._rec(0, 2, 2)],
            [self._rec(1, 0, 1), self._rec(1, 3, 3)],
        ])
        assert self._log(net) == [(0, 1, 32, "ovl:U"),
                                  (1, 0, 32, "ovl:U"),
                                  (0, 2, 32, "ovl:U"),
                                  (1, 3, 32, "ovl:U")]

    def test_rejects_gap_in_sequence(self):
        net = network()
        with pytest.raises(MachineError, match="no worker"):
            net.install_worker_logs([
                [self._rec(0, 1, 0)], [self._rec(1, 0, 2)]])

    def test_rejects_duplicate_sequence(self):
        net = network()
        with pytest.raises(MachineError, match="duplicated"):
            net.install_worker_logs([
                [self._rec(0, 1, 0)], [self._rec(1, 0, 0)]])

    def test_rejects_empty_worker_list(self):
        net = network()
        with pytest.raises(MachineError):
            net.install_worker_logs([])

    def test_empty_logs_merge_to_empty(self):
        net = network()
        net.install_worker_logs([[], []])
        assert net.log == []
