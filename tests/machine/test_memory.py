"""Per-PE memory accounting tests (Figure 11's OOM mechanism)."""

import pytest

from repro.errors import MachineError, SimulatedOutOfMemoryError
from repro.machine.memory import MemoryManager


class TestMemory:
    def test_allocate_and_free(self):
        mm = MemoryManager(npes=2, capacity=100)
        mm.allocate(0, "A", 60)
        assert mm.in_use(0) == 60
        mm.free(0, "A")
        assert mm.in_use(0) == 0

    def test_capacity_enforced(self):
        mm = MemoryManager(npes=1, capacity=100)
        mm.allocate(0, "A", 80)
        with pytest.raises(SimulatedOutOfMemoryError) as exc:
            mm.allocate(0, "B", 40)
        assert exc.value.pe == 0
        assert exc.value.requested == 40

    def test_peak_tracking(self):
        mm = MemoryManager(npes=1)
        mm.allocate(0, "A", 50)
        mm.allocate(0, "B", 30)
        mm.free(0, "A")
        mm.allocate(0, "C", 10)
        assert mm.peak(0) == 80
        assert mm.in_use(0) == 40

    def test_allocate_all_rolls_back_on_oom(self):
        mm = MemoryManager(npes=3, capacity=100)
        mm.allocate(2, "X", 90)
        with pytest.raises(SimulatedOutOfMemoryError):
            mm.allocate_all("A", [50, 50, 50])
        # the partial allocations on PEs 0 and 1 must have been undone
        assert mm.in_use(0) == 0 and mm.in_use(1) == 0

    def test_double_allocation_rejected(self):
        mm = MemoryManager(npes=1)
        mm.allocate(0, "A", 10)
        with pytest.raises(MachineError):
            mm.allocate(0, "A", 10)

    def test_free_unallocated_rejected(self):
        mm = MemoryManager(npes=1)
        with pytest.raises(MachineError):
            mm.free(0, "A")

    def test_unlimited_default(self):
        mm = MemoryManager(npes=1)
        mm.allocate(0, "A", 1 << 40)
        assert mm.in_use(0) == 1 << 40

    def test_peak_per_pe(self):
        mm = MemoryManager(npes=2)
        mm.allocate(0, "A", 10)
        mm.allocate(1, "A", 99)
        assert mm.peak_per_pe == 99

    def test_live_blocks(self):
        mm = MemoryManager(npes=1)
        mm.allocate(0, "A", 10)
        assert mm.live_blocks(0) == {"A": 10}
