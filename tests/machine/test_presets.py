"""Machine preset tests."""

import pytest

from repro.machine import Machine, PRESETS, by_name, scaled
from repro.machine.cost_model import SP2_COST_MODEL
from repro.machine.presets import (
    ETHERNET_NOW, MODERN_CLUSTER, MODERN_NODE, SP2, T3E,
)


class TestPresets:
    def test_sp2_is_default(self):
        assert SP2 is SP2_COST_MODEL
        assert Machine(grid=(2, 2)).cost_model == SP2

    def test_lookup(self):
        assert by_name("modern-cluster") is MODERN_CLUSTER
        assert by_name("T3E") is T3E

    def test_unknown_name(self):
        with pytest.raises(KeyError) as exc:
            by_name("cray-1")
        assert "sp2" in str(exc.value)

    def test_all_registered(self):
        assert set(PRESETS) == {"sp2", "ethernet", "t3e", "modern-node",
                                "modern-cluster"}

    def test_scaling_orthogonal(self):
        m = scaled(SP2, network=2.0)
        assert m.alpha == pytest.approx(2 * SP2.alpha)
        assert m.mem_load == SP2.mem_load
        m = scaled(SP2, memory=0.5)
        assert m.alpha == SP2.alpha
        assert m.copy_elem == pytest.approx(0.5 * SP2.copy_elem)

    def test_balance_ordering(self):
        # message latency: ethernet > sp2 > t3e > modern cluster
        assert ETHERNET_NOW.alpha > SP2.alpha > T3E.alpha \
            > MODERN_CLUSTER.alpha
        # memory: modern < sp2
        assert MODERN_NODE.mem_load < SP2.mem_load

    def test_presets_change_modelled_time(self):
        from repro import kernels
        from repro.compiler import compile_hpf
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 64},
                         level="O4", outputs={"T"})
        times = {}
        for name, model in PRESETS.items():
            machine = Machine(grid=(2, 2), cost_model=model)
            times[name] = cp.run(machine).modelled_time
        assert times["modern-cluster"] < times["sp2"] < times["ethernet"]

    def test_results_independent_of_preset(self):
        import numpy as np
        from repro import kernels
        from repro.compiler import compile_hpf
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 16},
                         level="O4", outputs={"T"})
        u = np.random.default_rng(0).standard_normal(
            (16, 16)).astype(np.float32)
        outs = [cp.run(Machine(grid=(2, 2), cost_model=m),
                       inputs={"U": u}).arrays["T"]
                for m in PRESETS.values()]
        for other in outs[1:]:
            np.testing.assert_array_equal(outs[0], other)
