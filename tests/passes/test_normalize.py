"""Normalization pass tests (paper section 2.1 / Figure 4)."""

import pytest

from repro import kernels
from repro.errors import UnsupportedFeatureError
from repro.frontend import parse_program
from repro.ir.nodes import Allocate, ArrayAssign, CShift, Deallocate, EOShift
from repro.ir.printer import format_program
from repro.passes.normalize import NormalizePass, is_normal_form


def normalize(src, pooled=True, **bindings):
    p = parse_program(src, bindings=bindings or {"N": 16})
    NormalizePass(pooled_temps=pooled).run(p)
    p.validate()
    return p


class TestFivePointFigure4:
    """The paper's Figure 4: CM Fortran's translation of Figure 1."""

    def test_four_shift_temporaries(self):
        p = normalize(kernels.FIVE_POINT_ARRAY_SYNTAX, pooled=False)
        shifts = [s for s in p.leaf_statements()
                  if isinstance(s, ArrayAssign)
                  and isinstance(s.rhs, CShift)]
        assert len(shifts) == 4
        # whole-array singleton shifts of SRC
        for s in shifts:
            assert s.lhs.section is None
            assert s.rhs.array.name == "SRC"

    def test_shift_amounts_match_figure4(self):
        p = normalize(kernels.FIVE_POINT_ARRAY_SYNTAX, pooled=False)
        shifts = {(s.rhs.shift, s.rhs.dim)
                  for s in p.leaf_statements()
                  if isinstance(s, ArrayAssign)
                  and isinstance(s.rhs, CShift)}
        assert shifts == {(-1, 1), (-1, 2), (1, 1), (1, 2)}

    def test_allocate_deallocate_emitted(self):
        p = normalize(kernels.FIVE_POINT_ARRAY_SYNTAX, pooled=False)
        assert isinstance(p.body[0], Allocate)
        assert isinstance(p.body[-1], Deallocate)
        assert len(p.body[0].names) == 4

    def test_result_is_normal_form(self):
        p = normalize(kernels.FIVE_POINT_ARRAY_SYNTAX)
        assert is_normal_form(p)

    def test_aligned_operand_keeps_section(self):
        p = normalize(kernels.FIVE_POINT_ARRAY_SYNTAX, pooled=False)
        compute = [s for s in p.leaf_statements()
                   if isinstance(s, ArrayAssign)
                   and not isinstance(s.rhs, CShift)]
        assert len(compute) == 1
        text = str(compute[0])
        # the centre operand stays a direct aligned reference of SRC
        assert "SRC(2:N-1,2:N-1)" in text


class TestTemporaryPolicy:
    """Figure 11/12 storage behaviour: 12 vs pooled temporaries."""

    def count_temps(self, src, pooled):
        p = normalize(src, pooled=pooled)
        return sum(1 for s in p.symbols.arrays.values() if s.is_temporary)

    def test_single_statement_nine_point_needs_12(self):
        assert self.count_temps(kernels.NINE_POINT_CSHIFT, True) == 12

    def test_problem9_pools_to_one(self):
        assert self.count_temps(kernels.PURDUE_PROBLEM9, True) == 1

    def test_problem9_fresh_gets_six(self):
        assert self.count_temps(kernels.PURDUE_PROBLEM9, False) == 6

    def test_singleton_shifts_left_untouched(self):
        p = normalize(kernels.PURDUE_PROBLEM9)
        text = format_program(p)
        assert "RIP = CSHIFT(U,SHIFT=+1,DIM=1)" in text
        assert "RIN = CSHIFT(U,SHIFT=-1,DIM=1)" in text


class TestNestedShifts:
    def test_nested_cshift_chains(self):
        p = normalize(kernels.NINE_POINT_CSHIFT)
        shifts = [s for s in p.leaf_statements()
                  if isinstance(s, ArrayAssign)
                  and isinstance(s.rhs, CShift)]
        assert len(shifts) == 12  # 8 simple + 4 chained corners
        assert is_normal_form(p)

    def test_inner_before_outer(self):
        src = """
        REAL A(8,8), B(8,8)
        A = CSHIFT(CSHIFT(B,-1,1),+1,2)
        """
        p = normalize(src)
        shifts = [s for s in p.leaf_statements()
                  if isinstance(s, ArrayAssign)
                  and isinstance(s.rhs, CShift)]
        assert len(shifts) == 2
        # first hoisted statement shifts B, second shifts the temporary
        assert shifts[0].rhs.array.name == "B"
        assert shifts[1].rhs.array.name == shifts[0].lhs.name


class TestEOShift:
    def test_eoshift_hoisted(self):
        src = """
        REAL A(8,8), B(8,8)
        A = B + EOSHIFT(B,SHIFT=1,BOUNDARY=2.5,DIM=1)
        """
        p = normalize(src)
        shifts = [s for s in p.leaf_statements()
                  if isinstance(s, ArrayAssign)
                  and isinstance(s.rhs, EOShift)]
        assert len(shifts) == 1
        assert shifts[0].rhs.boundary == 2.5


class TestErrors:
    def test_whole_array_operand_in_sectioned_stmt(self):
        src = """
        REAL A(8,8), B(8,8)
        A(2:7,2:7) = B
        """
        with pytest.raises(UnsupportedFeatureError):
            normalize(src)

    def test_non_constant_offset_section(self):
        src = """
        REAL A(8,8), B(8,8)
        A(2:7,2:7) = B(2:7,1:6) + B(1:5,1:6)
        """
        with pytest.raises(UnsupportedFeatureError):
            normalize(src)


class TestControlFlow:
    def test_normalizes_inside_do_loop(self):
        src = """
        REAL A(8,8), B(8,8)
        DO K = 1, 3
          A = A + CSHIFT(B,1,1)
        ENDDO
        """
        p = normalize(src)
        assert is_normal_form(p)

    def test_normalizes_inside_if(self):
        src = """
        REAL A(8,8), B(8,8)
        IF (X < 1) THEN
          A = A + CSHIFT(B,1,2)
        ENDIF
        """
        p = normalize(src)
        assert is_normal_form(p)
