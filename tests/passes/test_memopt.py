"""Memory-optimization analysis tests (paper section 3.4)."""

import pytest

from repro.compiler.plan import NestStmt
from repro.ir.nodes import BinOp, Const, OffsetRef, ScalarRef
from repro.passes.memopt import analyze_nest, profile_nest, scaled_to_points


def rank2(_name):
    return 2


def ref(name, dx, dy):
    return OffsetRef(name, (dx, dy))


def add(*exprs):
    out = exprs[0]
    for e in exprs[1:]:
        out = BinOp("+", out, e)
    return out


def nine_point_fused():
    """The Figure 16 nest: T accumulates 9 offsets of U."""
    stmts = [NestStmt("T", add(ref("U", 0, 0), ref("U", 1, 0),
                               ref("U", -1, 0)))]
    for dx, dy in [(0, -1), (0, 1), (1, -1), (1, 1), (-1, -1), (-1, 1)]:
        stmts.append(NestStmt("T", add(ref("T", 0, 0), ref("U", dx, dy))))
    return stmts


class TestProfile:
    def test_reads_and_writes(self):
        prof = profile_nest(nine_point_fused(), rank2)
        assert len(prof.reads) == 15  # 9 U refs + 6 T re-reads
        assert len(prof.writes) == 7
        assert prof.flops == 8  # 8 additions

    def test_scalar_and_const_free(self):
        stmts = [NestStmt("T", BinOp("*", ScalarRef("C1"),
                                     BinOp("+", ref("U", 0, 0),
                                           Const(2.0))))]
        prof = profile_nest(stmts, rank2)
        assert len(prof.reads) == 1
        assert prof.flops == 2


class TestBaselineCache:
    """Hardware-cache row model without explicit memory optimization."""

    def test_fused_nine_point_three_rows(self):
        stats = analyze_nest(nine_point_fused(), rank2, memopt=False)
        # rows -1, 0, +1 of U miss once each; T re-reads hit (written
        # earlier in the nest)
        assert stats.mem_loads == 3.0
        assert stats.cached_loads == 12.0
        assert stats.stores == 7.0

    def test_unfused_accumulation_statement(self):
        stmts = [NestStmt("T", add(ref("T", 0, 0), ref("U", 0, -1)))]
        stats = analyze_nest(stmts, rank2)
        # T not written earlier in THIS nest -> it misses too
        assert stats.mem_loads == 2.0
        assert stats.stores == 1.0

    def test_same_row_shares_line(self):
        stmts = [NestStmt("T", add(ref("U", 0, -1), ref("U", 0, 0),
                                   ref("U", 0, 1)))]
        stats = analyze_nest(stmts, rank2)
        assert stats.mem_loads == 1.0
        assert stats.cached_loads == 2.0


class TestMemopt:
    def test_nine_point_unroll2(self):
        stats = analyze_nest(nine_point_fused(), rank2, memopt=True,
                             unroll_jam=2)
        # 3 rows amortised over u=2 -> (3+1)/2 = 2 loads; one store for T
        assert stats.mem_loads == 2.0
        assert stats.stores == 1.0
        assert stats.cached_loads == 13.0

    def test_unroll_factors(self):
        for u, expect in [(1, 3.0), (2, 2.0), (3, 5 / 3), (4, 1.5)]:
            stats = analyze_nest(nine_point_fused(), rank2, memopt=True,
                                 unroll_jam=u)
            assert stats.mem_loads == pytest.approx(expect)

    def test_never_worse_than_baseline(self):
        base = analyze_nest(nine_point_fused(), rank2, memopt=False)
        opt = analyze_nest(nine_point_fused(), rank2, memopt=True,
                           unroll_jam=1)
        assert opt.mem_loads <= base.mem_loads
        assert opt.stores <= base.stores

    def test_two_target_nest_keeps_two_stores(self):
        stmts = [NestStmt("T", ref("U", 0, 0)),
                 NestStmt("V", ref("U", 0, 1))]
        stats = analyze_nest(stmts, rank2, memopt=True, unroll_jam=2)
        assert stats.stores == 2.0


class TestScaling:
    def test_scaled_to_points(self):
        stats = analyze_nest(nine_point_fused(), rank2)
        scaled = scaled_to_points(stats, 4096)
        assert scaled.points == 4096
        assert scaled.mem_loads == stats.mem_loads


class TestCostInteraction:
    def test_loop_time_monotone_in_level(self):
        from repro.machine.cost_model import SP2_COST_MODEL
        from repro.passes.memopt import scaled_to_points as sp
        base = sp(analyze_nest(nine_point_fused(), rank2), 10000)
        opt = sp(analyze_nest(nine_point_fused(), rank2, memopt=True,
                              unroll_jam=2), 10000)
        assert SP2_COST_MODEL.loop_time(opt) < \
            SP2_COST_MODEL.loop_time(base)

    def test_overhead_factor_scales(self):
        from repro.machine.cost_model import SP2_COST_MODEL
        stats = scaled_to_points(analyze_nest(nine_point_fused(), rank2),
                                 1000)
        t1 = SP2_COST_MODEL.loop_time(stats)
        t18 = SP2_COST_MODEL.loop_time(stats, overhead_factor=18.0)
        assert t18 == pytest.approx(18 * t1)
