"""Pass-manager framework tests: trace snapshots, repeated passes,
timing/IR stats, and tracer integration."""

import pytest

from repro import kernels
from repro.frontend.parser import parse_program
from repro.ir.nodes import ArrayAssign
from repro.obs import Tracer
from repro.passes.normalize import NormalizePass
from repro.passes.pass_manager import (
    Pass, PassManager, PassTrace, ir_stats,
)


def parsed():
    return parse_program(kernels.PURDUE_PROBLEM9, bindings={"N": 16})


class DropLastPass(Pass):
    """Toy pass that deletes the trailing statement; visibly different
    IR text every time it runs."""

    name = "drop-last"

    def run(self, program) -> None:
        program.body.pop()


class TestRepeatedPass:
    def test_after_returns_last_snapshot_for_repeated_pass(self):
        # A pipeline may legally run the same pass twice; after() must
        # reflect the final state, not the first run's (regression).
        trace = PassTrace()
        program = parsed()
        trace.record("drop-last", program)
        first = trace.after("drop-last")
        p = DropLastPass()
        p.run(program)
        trace.record("drop-last", program)
        assert trace.after("drop-last") != first
        assert len(trace.after("drop-last")) < len(first)
        assert trace.names() == ["drop-last", "drop-last"]

    def test_manager_with_duplicate_pass_instances(self):
        trace = PassTrace()
        program = parsed()
        n_before = len(program.body)
        PassManager([DropLastPass(), DropLastPass()], trace).run(program)
        assert trace.names() == ["input", "drop-last", "drop-last"]
        assert len(program.body) == n_before - 2
        assert trace.snapshot("drop-last").ir["statements"] == \
            n_before - 2

    def test_snapshot_returns_last_full_record(self):
        trace = PassTrace()
        program = parsed()
        trace.record("p", program, elapsed_s=1.0)
        trace.record("p", program, elapsed_s=2.0)
        assert trace.snapshot("p").elapsed_s == 2.0

    def test_after_unknown_pass_raises(self):
        trace = PassTrace()
        trace.record("input", parsed())
        with pytest.raises(KeyError):
            trace.after("nonexistent")


class TestSnapshotMetadata:
    def test_snapshots_unpack_as_name_text_pairs(self):
        # Backward compatibility with the original two-tuple format.
        trace = PassTrace()
        trace.record("input", parsed())
        [(name, text)] = trace.snapshots
        assert name == "input"
        assert "CSHIFT" in text

    def test_records_elapsed_and_ir_stats(self):
        trace = PassTrace()
        PassManager([NormalizePass()], trace).run(parsed())
        snap = trace.snapshot("normalize")
        assert snap.elapsed_s >= 0.0
        assert snap.ir["statements"] > 0
        assert snap.ir["shift_intrinsics"] == 8
        assert snap.stats is None  # NormalizePass carries no stats

    def test_str_keeps_golden_format(self):
        trace = PassTrace()
        PassManager([NormalizePass()], trace).run(parsed())
        assert "=== after normalize ===" in str(trace)


class TestIrStats:
    def test_counts_problem9_shape(self):
        stats = ir_stats(parsed())
        # 9 leaf statements (Figure 3), 8 CSHIFT intrinsics, no
        # OVERLAP_SHIFT calls before the pipeline runs
        assert stats["statements"] == 9
        assert stats["shift_intrinsics"] == 8
        assert stats["overlap_shifts"] == 0


class TestTracerIntegration:
    def test_manager_emits_one_span_per_pass(self):
        tracer = Tracer()
        PassManager([NormalizePass(), DropLastPass()],
                    tracer=tracer).run(parsed())
        assert [s.name for s in tracer.spans()] == \
            ["pass:normalize", "pass:drop-last"]

    def test_span_carries_ir_gauges(self):
        tracer = Tracer()
        PassManager([NormalizePass()], tracer=tracer).run(parsed())
        span = tracer.find("pass:normalize")
        assert span.counters["ir.shift_intrinsics"] == 8
        assert span.counters["ir.statements_delta"] > 0

    def test_no_tracer_records_nothing(self):
        # the default path must not touch any tracer state
        program = parsed()
        PassManager([NormalizePass()]).run(program)
        assert isinstance(program.body[0], (ArrayAssign, object))
