"""Offset-array pass tests (paper section 3.1)."""

import numpy as np
import pytest

from repro import kernels
from repro.frontend import parse_program
from repro.ir.nodes import ArrayAssign, OffsetRef, OverlapShift
from repro.ir.printer import format_program
from repro.passes.normalize import NormalizePass
from repro.passes.offset_arrays import OffsetArrayPass
from repro.runtime.reference import evaluate


def run_pass(src, outputs=None, max_offset=4, bindings=None):
    p = parse_program(src, bindings=bindings or {"N": 16})
    NormalizePass().run(p)
    pass_ = OffsetArrayPass(max_offset=max_offset, outputs=outputs)
    pass_.run(p)
    p.validate()
    return p, pass_.stats


def semantics_preserved(src, outputs, inputs, scalars=None, bindings=None):
    """The transformed program must compute the same values."""
    bindings = bindings or {"N": 16}
    before = parse_program(src, bindings=bindings)
    ref = evaluate(before, inputs=inputs, scalars=scalars)
    after, _ = run_pass(src, outputs=outputs, bindings=bindings)
    got = evaluate(after, inputs=inputs, scalars=scalars)
    for name in outputs:
        np.testing.assert_allclose(got[name], ref[name], rtol=1e-5)


class TestProblem9:
    def test_all_shifts_converted(self):
        _, stats = run_pass(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert stats.shifts_converted == 8
        assert stats.shifts_kept == 0

    def test_no_copies_needed(self):
        _, stats = run_pass(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert stats.copies_inserted == 0
        assert stats.copies_elided == 8

    def test_dead_temporaries_pruned(self):
        p, stats = run_pass(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert "TMP1" in stats.dead_arrays
        assert not any(s.is_temporary for s in p.symbols.arrays.values())

    def test_multi_offset_arrays_created(self):
        p, _ = run_pass(kernels.PURDUE_PROBLEM9, outputs={"T"})
        text = format_program(p)
        assert "U<+1,-1>" in text and "U<-1,+1>" in text

    def test_base_offsets_recorded(self):
        p, _ = run_pass(kernels.PURDUE_PROBLEM9, outputs={"T"})
        multi = [s for s in p.leaf_statements()
                 if isinstance(s, OverlapShift) and s.base_offsets]
        assert len(multi) == 4
        assert {s.base_offsets for s in multi} == {(1, 0), (-1, 0)}

    def test_semantics(self):
        u = np.random.default_rng(3).standard_normal((16, 16)).astype(
            np.float32)
        semantics_preserved(kernels.PURDUE_PROBLEM9, {"T"}, {"U": u})


class TestLiveOut:
    def test_live_out_intermediate_keeps_copy(self):
        # without an outputs set, RIP/RIN are live out -> copies stay
        p, stats = run_pass(kernels.PURDUE_PROBLEM9, outputs=None)
        assert stats.copies_inserted >= 2
        text = format_program(p)
        assert "RIP = U<+1,0>" in text

    def test_live_out_semantics(self):
        u = np.random.default_rng(4).standard_normal((16, 16)).astype(
            np.float32)
        semantics_preserved(kernels.PURDUE_PROBLEM9, {"T", "RIP", "RIN"},
                            {"U": u})


class TestCriteria:
    def test_large_shift_rejected(self):
        src = """
        REAL A(32,32), B(32,32)
        A = CSHIFT(B,SHIFT=8,DIM=1)
        """
        _, stats = run_pass(src, outputs={"A"}, max_offset=4,
                            bindings={"N": 32})
        assert stats.shifts_kept == 1
        assert stats.shifts_converted == 0

    def test_distribution_mismatch_rejected(self):
        src = """
        REAL A(16,16), B(16,16)
        !HPF$ DISTRIBUTE A(BLOCK,BLOCK)
        !HPF$ DISTRIBUTE B(BLOCK,*)
        A = CSHIFT(B,SHIFT=1,DIM=1)
        """
        _, stats = run_pass(src, outputs={"A"})
        assert stats.shifts_kept == 1

    def test_self_shift_rejected(self):
        src = """
        REAL A(16,16)
        A = CSHIFT(A,SHIFT=1,DIM=1)
        """
        _, stats = run_pass(src, outputs={"A"})
        assert stats.shifts_kept == 1

    def test_accumulated_offsets_bounded(self):
        # chains accumulate: 3 + 3 exceeds max_offset=4 on the second hop
        src = """
        REAL A(32,32), B(32,32), C(32,32), D(32,32)
        B = CSHIFT(A,SHIFT=3,DIM=1)
        C = CSHIFT(B,SHIFT=3,DIM=1)
        D = C + 0
        """
        _, stats = run_pass(src, outputs={"D"}, max_offset=4,
                            bindings={"N": 32})
        assert stats.shifts_converted == 1
        assert stats.shifts_kept == 1


class TestKills:
    def test_redefined_base_kills_relationship(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16), D(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        A = A + 1
        C = B + 0
        """
        p, stats = run_pass(src, outputs={"C"})
        # the use of B after A's redefinition must NOT be rewritten
        text = format_program(p)
        assert "C = B + 0" in text
        assert stats.copies_inserted == 1  # B must be materialised

    def test_kill_semantics(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        A = A + 1
        C = B + A
        """
        a = np.random.default_rng(5).standard_normal((16, 16)).astype(
            np.float32)
        semantics_preserved(src, {"C"}, {"A": a})

    def test_use_before_kill_still_rewritten(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16), D(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        C = B + 0
        A = A + 1
        D = A + 0
        """
        p, _ = run_pass(src, outputs={"C", "D"})
        text = format_program(p)
        assert "C = A<+1,0> + 0" in text


class TestControlFlow:
    def test_branch_join_conservative(self):
        # the relationship holds on one branch only -> meet drops it
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        IF (X < 1) THEN
          A = A + 1
        ENDIF
        C = B + 0
        """
        p, stats = run_pass(src, outputs={"C"})
        text = format_program(p)
        assert "C = B + 0" in text
        assert stats.copies_inserted == 1

    def test_branch_local_use_rewritten(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        IF (X < 1) THEN
          C = B + 0
        ENDIF
        """
        p, _ = run_pass(src, outputs={"C"})
        text = format_program(p)
        assert "C = A<+1,0> + 0" in text

    def test_loop_body_kill_invalidates_entry(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        DO K = 1, 3
          C = B + 0
          A = A + 1
        ENDDO
        """
        p, stats = run_pass(src, outputs={"C"})
        # A is killed inside the loop; the use of B in iteration 2 must
        # read the materialised copy
        text = format_program(p)
        assert "C = B + 0" in text
        assert stats.copies_inserted == 1

    def test_loop_semantics(self):
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        DO K = 1, 3
          C = C + B
          A = A + 1
        ENDDO
        """
        a = np.random.default_rng(6).standard_normal((16, 16)).astype(
            np.float32)
        semantics_preserved(src, {"C"}, {"A": a})

    def test_shift_inside_loop(self):
        src = """
        REAL A(16,16), B(16,16)
        DO K = 1, 3
          B = CSHIFT(A,SHIFT=1,DIM=1)
          A = B + 1
        ENDDO
        """
        a = np.random.default_rng(7).standard_normal((16, 16)).astype(
            np.float32)
        semantics_preserved(src, {"A"}, {"A": a})


class TestArraySyntax:
    def test_five_point_fully_converted(self):
        p, stats = run_pass(kernels.FIVE_POINT_ARRAY_SYNTAX,
                            outputs={"DST"})
        assert stats.shifts_converted == 4
        ovls = [s for s in p.leaf_statements()
                if isinstance(s, OverlapShift)]
        assert {(s.shift, s.dim) for s in ovls} == {
            (-1, 1), (-1, 2), (1, 1), (1, 2)}

    def test_sectioned_use_rewritten_with_offsets(self):
        p, _ = run_pass(kernels.FIVE_POINT_ARRAY_SYNTAX, outputs={"DST"})
        compute = [s for s in p.leaf_statements()
                   if isinstance(s, ArrayAssign)][0]
        offs = {n.offsets for n in compute.rhs.walk()
                if isinstance(n, OffsetRef)}
        assert offs == {(-1, 0), (0, -1), (1, 0), (0, 1)}
