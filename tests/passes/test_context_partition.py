"""Context partitioning / typed fusion tests (paper section 3.2)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.frontend import parse_program
from repro.ir.dependence import build_ddg
from repro.ir.nodes import ArrayAssign, OverlapShift
from repro.passes.context_partition import (
    ContextPartitionPass, congruence_class, typed_fusion,
)
from repro.passes.normalize import NormalizePass
from repro.passes.offset_arrays import OffsetArrayPass
from repro.runtime.reference import evaluate


def prepared_problem9():
    p = parse_program(kernels.PURDUE_PROBLEM9, bindings={"N": 16})
    NormalizePass().run(p)
    OffsetArrayPass(outputs={"T"}).run(p)
    return p


class TestProblem9Figure14:
    """Figure 14: comm first, all computation adjacent."""

    def test_two_groups(self):
        p = prepared_problem9()
        pass_ = ContextPartitionPass()
        pass_.run(p)
        kinds = ["comm" if isinstance(s, OverlapShift) else "compute"
                 for s in p.body]
        # all communication first, then all computation
        first_compute = kinds.index("compute")
        assert all(k == "comm" for k in kinds[:first_compute])
        assert all(k == "compute" for k in kinds[first_compute:])
        assert kinds.count("comm") == 8

    def test_compute_order_preserved(self):
        p = prepared_problem9()
        before = [str(s) for s in p.body if isinstance(s, ArrayAssign)]
        ContextPartitionPass().run(p)
        after = [str(s) for s in p.body if isinstance(s, ArrayAssign)]
        assert before == after

    def test_semantics_preserved(self):
        u = np.random.default_rng(0).standard_normal((16, 16)).astype(
            np.float32)
        p = prepared_problem9()
        ref = evaluate(p, inputs={"U": u})["T"]
        p2 = prepared_problem9()
        ContextPartitionPass().run(p2)
        got = evaluate(p2, inputs={"U": u})["T"]
        np.testing.assert_allclose(got, ref, rtol=1e-6)


class TestCongruence:
    def test_same_space_same_class(self):
        src = """
        REAL A(8,8), B(8,8), C(8,8)
        A(2:7,2:7) = 1
        B(2:7,2:7) = 2
        C = 3
        """
        p = parse_program(src)
        classes = [congruence_class(s, p) for s in p.body]
        assert classes[0] == classes[1]
        assert classes[0] != classes[2]

    def test_different_distribution_different_class(self):
        src = """
        REAL A(8,8), B(8,8)
        !HPF$ DISTRIBUTE A(BLOCK,BLOCK)
        !HPF$ DISTRIBUTE B(BLOCK,*)
        A = 1
        B = 2
        """
        p = parse_program(src)
        classes = [congruence_class(s, p) for s in p.body]
        assert classes[0] != classes[1]

    def test_comm_statements_share_class(self):
        p = prepared_problem9()
        comm = [s for s in p.body if isinstance(s, OverlapShift)]
        classes = {congruence_class(s, p) for s in comm}
        assert len(classes) == 1


class TestTypedFusionInvariants:
    """Property tests on synthetic interleavings of Problem 9."""

    def _check(self, p):
        stmts = list(p.body)
        result = typed_fusion(stmts, p)
        # every statement in exactly one group
        flat = [i for g in result.groups for i in g]
        assert sorted(flat) == list(range(len(stmts)))
        placement = {}
        for g, members in enumerate(result.groups):
            for i in members:
                placement[i] = g
        classes = [congruence_class(s, p) for s in stmts]
        # groups are class-pure
        for g, members in enumerate(result.groups):
            assert len({classes[i] for i in members}) == 1
        # every dependence respected by the group order
        for e in result.edges:
            if e.fusion_preventing or classes[e.src] != classes[e.dst]:
                assert placement[e.src] < placement[e.dst], str(e)
            else:
                assert placement[e.src] <= placement[e.dst], str(e)
        # same-group statements keep original relative order
        for members in result.groups:
            assert members == sorted(members)

    def test_problem9(self):
        self._check(prepared_problem9())

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_programs(self, seed):
        """Random straight-line programs over a few arrays."""
        rng = np.random.default_rng(seed)
        names = ["A", "B", "C"]
        lines = ["REAL A(8,8), B(8,8), C(8,8), D(8,8)"]
        for _ in range(rng.integers(2, 10)):
            kind = rng.integers(0, 3)
            if kind == 0:
                dst, src = rng.choice(names, 2, replace=False)
                lines.append(f"{dst} = CSHIFT({src},SHIFT=1,DIM=1)")
            elif kind == 1:
                dst, src = rng.choice(names, 2, replace=False)
                lines.append(f"{dst} = {dst} + {src}")
            else:
                lines.append("D(2:7,2:7) = 1")
        p = parse_program("\n".join(lines))
        NormalizePass().run(p)
        OffsetArrayPass().run(p)
        self._check(p)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_partition_preserves_semantics(self, seed):
        rng = np.random.default_rng(seed)
        names = ["A", "B", "C"]
        lines = ["REAL A(8,8), B(8,8), C(8,8)"]
        for _ in range(rng.integers(2, 8)):
            if rng.integers(0, 2):
                dst, src = rng.choice(names, 2, replace=False)
                s = int(rng.choice([-1, 1]))
                d = int(rng.integers(1, 3))
                lines.append(f"{dst} = CSHIFT({src},SHIFT={s},DIM={d})")
            else:
                dst, src = rng.choice(names, 2, replace=False)
                lines.append(f"{dst} = {dst} + {src} * 0.5")
        src_text = "\n".join(lines)
        inputs = {n: np.random.default_rng(seed + 1).standard_normal(
            (8, 8)).astype(np.float32) for n in names}

        p1 = parse_program(src_text)
        ref = evaluate(p1, inputs=inputs)

        p2 = parse_program(src_text)
        NormalizePass().run(p2)
        OffsetArrayPass().run(p2)
        ContextPartitionPass().run(p2)
        got = evaluate(p2, inputs=inputs)
        for n in names:
            np.testing.assert_allclose(got[n], ref[n], rtol=1e-5)


class TestControlFlowBoundaries:
    def test_reorder_respects_loop_boundary(self):
        src = """
        REAL A(8,8), B(8,8)
        DO K = 1, 2
          B = CSHIFT(A,SHIFT=1,DIM=1)
          A = B + 1
        ENDDO
        """
        p = parse_program(src)
        NormalizePass().run(p)
        OffsetArrayPass().run(p)
        ContextPartitionPass().run(p)
        # the DO loop is still the only top-level statement family
        from repro.ir.nodes import DoLoop
        assert any(isinstance(s, DoLoop) for s in p.body)
