"""Golden test: the paper's extended example (section 4, Figures 12-15).

Traces Problem 9 through the full pipeline and compares the IR after
each phase against the code the paper prints.  Names differ only where
the paper's figures are themselves schematic (the shared temporary is
``TMP`` in the paper, ``TMP1`` here).
"""

import pytest

from repro import kernels
from repro.compiler import HpfCompiler
from repro.compiler.options import CompilerOptions, OptLevel


@pytest.fixture(scope="module")
def trace():
    options = CompilerOptions.make(OptLevel.O4, outputs={"T"},
                                   keep_trace=True)
    compiled = HpfCompiler(options).compile(
        kernels.PURDUE_PROBLEM9, bindings={"N": 16})
    return compiled.trace


def lines(text):
    return [ln.strip() for ln in text.strip().splitlines()]


class TestFigure12Normalization:
    def test_normalized_form(self, trace):
        got = lines(trace.after("normalize"))
        assert got == [
            "ALLOCATE TMP1",
            "RIP = CSHIFT(U,SHIFT=+1,DIM=1)",
            "RIN = CSHIFT(U,SHIFT=-1,DIM=1)",
            "T = U + RIP + RIN",
            "TMP1 = CSHIFT(U,SHIFT=-1,DIM=2)",
            "T = T + TMP1",
            "TMP1 = CSHIFT(U,SHIFT=+1,DIM=2)",
            "T = T + TMP1",
            "TMP1 = CSHIFT(RIP,SHIFT=-1,DIM=2)",
            "T = T + TMP1",
            "TMP1 = CSHIFT(RIP,SHIFT=+1,DIM=2)",
            "T = T + TMP1",
            "TMP1 = CSHIFT(RIN,SHIFT=-1,DIM=2)",
            "T = T + TMP1",
            "TMP1 = CSHIFT(RIN,SHIFT=+1,DIM=2)",
            "T = T + TMP1",
            "DEALLOCATE TMP1",
        ]


class TestFigure13OffsetArrays:
    def test_offset_form(self, trace):
        got = lines(trace.after("offset-arrays"))
        assert got == [
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=1)",
            "T = U + U<+1,0> + U<-1,0>",
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=2)",
            "T = T + U<0,-1>",
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=2)",
            "T = T + U<0,+1>",
            "CALL OVERLAP_SHIFT(U<+1,0>,SHIFT=-1,DIM=2)",
            "T = T + U<+1,-1>",
            "CALL OVERLAP_SHIFT(U<+1,0>,SHIFT=+1,DIM=2)",
            "T = T + U<+1,+1>",
            "CALL OVERLAP_SHIFT(U<-1,0>,SHIFT=-1,DIM=2)",
            "T = T + U<-1,-1>",
            "CALL OVERLAP_SHIFT(U<-1,0>,SHIFT=+1,DIM=2)",
            "T = T + U<-1,+1>",
        ]


class TestFigure14ContextPartitioning:
    def test_partitioned_form(self, trace):
        got = lines(trace.after("context-partition"))
        assert got == [
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=2)",
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=2)",
            "CALL OVERLAP_SHIFT(U<+1,0>,SHIFT=-1,DIM=2)",
            "CALL OVERLAP_SHIFT(U<+1,0>,SHIFT=+1,DIM=2)",
            "CALL OVERLAP_SHIFT(U<-1,0>,SHIFT=-1,DIM=2)",
            "CALL OVERLAP_SHIFT(U<-1,0>,SHIFT=+1,DIM=2)",
            "T = U + U<+1,0> + U<-1,0>",
            "T = T + U<0,-1>",
            "T = T + U<0,+1>",
            "T = T + U<+1,-1>",
            "T = T + U<+1,+1>",
            "T = T + U<-1,-1>",
            "T = T + U<-1,+1>",
        ]


class TestFigure15CommunicationUnioning:
    def test_unioned_form(self, trace):
        got = lines(trace.after("comm-union"))
        assert got == [
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=2,[0:n1+1,*])",
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=2,[0:n1+1,*])",
            "T = U + U<+1,0> + U<-1,0>",
            "T = T + U<0,-1>",
            "T = T + U<0,+1>",
            "T = T + U<+1,-1>",
            "T = T + U<+1,+1>",
            "T = T + U<-1,-1>",
            "T = T + U<-1,+1>",
        ]


class TestFigure16Scalarization:
    """The final plan: four shifts plus one fused subgrid nest."""

    def test_plan_shape(self):
        from repro.compiler import compile_hpf
        from repro.compiler.plan import LoopNestOp, OverlapShiftOp
        compiled = compile_hpf(kernels.PURDUE_PROBLEM9,
                               bindings={"N": 16},
                               level="O4", outputs={"T"})
        ops = list(compiled.plan.walk_ops())
        shifts = [op for op in ops if isinstance(op, OverlapShiftOp)]
        nests = [op for op in ops if isinstance(op, LoopNestOp)]
        assert len(shifts) == 4
        assert len(nests) == 1
        assert len(nests[0].statements) == 7
        assert nests[0].fused
