"""Communication unioning tests (paper section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.frontend import parse_program
from repro.ir.nodes import OverlapShift
from repro.ir.rsd import RSD, RSDim
from repro.passes.comm_union import (
    CommUnionPass, requirement_of, union_requirements,
)
from repro.passes.context_partition import ContextPartitionPass
from repro.passes.normalize import NormalizePass
from repro.passes.offset_arrays import OffsetArrayPass


def optimized(src, outputs, bindings=None):
    p = parse_program(src, bindings=bindings or {"N": 16})
    NormalizePass().run(p)
    OffsetArrayPass(outputs=outputs).run(p)
    ContextPartitionPass().run(p)
    pass_ = CommUnionPass()
    pass_.run(p)
    p.validate()
    return p, pass_.stats


def shifts_of(p):
    return [s for s in p.leaf_statements() if isinstance(s, OverlapShift)]


class TestRequirementOf:
    def test_plain_shift(self):
        s = OverlapShift("U", +1, 1)
        assert requirement_of(s) == ("U", (1,), None)

    def test_multi_offset(self):
        s = OverlapShift("U", -1, 2, base_offsets=(1, 0))
        assert requirement_of(s) == ("U", (1, -1), None)

    def test_accumulates_same_dim(self):
        s = OverlapShift("U", 2, 1, base_offsets=(1, 0))
        assert requirement_of(s) == ("U", (3, 0), None)

    def test_eoshift_fill_kind(self):
        s = OverlapShift("U", 1, 1, boundary=2.5)
        assert requirement_of(s) == ("U", (1,), 2.5)


class TestUnionRequirements:
    def test_nine_point(self):
        offsets = [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
                   if (dx, dy) != (0, 0)]
        calls = union_requirements("U", 2, offsets)
        assert len(calls) == 4
        by_dim = {(c.dim, 1 if c.shift > 0 else -1): c for c in calls}
        assert set(by_dim) == {(1, 1), (1, -1), (2, 1), (2, -1)}
        # dim-1 shifts carry no RSD; dim-2 shifts carry [0:N+1,*]
        assert by_dim[(1, 1)].rsd is None
        assert by_dim[(2, 1)].rsd == RSD((RSDim(1, 1), None))

    def test_subsumption_by_amount(self):
        calls = union_requirements("U", 2, [(2, 0), (1, 0)])
        assert len(calls) == 1
        assert calls[0].shift == 2

    def test_directions_kept_separate(self):
        calls = union_requirements("U", 2, [(1, 0), (-1, 0)])
        assert {c.shift for c in calls} == {-1, 1}

    def test_star_needs_no_rsd(self):
        offsets = [(1, 0), (-1, 0), (0, 1), (0, -1)]
        calls = union_requirements("U", 2, offsets)
        assert len(calls) == 4
        assert all(c.rsd is None for c in calls)

    def test_ascending_dim_order(self):
        offsets = [(1, 1), (1, -1), (-1, 1), (-1, -1)]
        calls = union_requirements("U", 2, offsets)
        dims = [c.dim for c in calls]
        assert dims == sorted(dims)

    def test_radius2_corner_rsd(self):
        calls = union_requirements("U", 2, [(2, 2)])
        dim2 = [c for c in calls if c.dim == 2][0]
        assert dim2.rsd.dims[0] == RSDim(0, 2)
        assert dim2.shift == 2

    def test_3d_box(self):
        import itertools
        offsets = [o for o in itertools.product((-1, 0, 1), repeat=3)
                   if any(o)]
        calls = union_requirements("U", 3, offsets)
        assert len(calls) == 6


class TestPipelineCounts:
    @pytest.mark.parametrize("src,out,expected", [
        (kernels.FIVE_POINT_ARRAY_SYNTAX, "DST", 4),
        (kernels.NINE_POINT_CSHIFT, "DST", 4),
        (kernels.PURDUE_PROBLEM9, "T", 4),
        (kernels.NINE_POINT_ARRAY_SYNTAX, "DST", 4),
        (kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX, "DST", 4),
    ])
    def test_minimal_shift_count_2d(self, src, out, expected):
        p, _ = optimized(src, outputs={out}, bindings={"N": 20})
        assert len(shifts_of(p)) == expected

    def test_problem9_before_after(self):
        _, stats = optimized(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert stats.shifts_before == 8
        assert stats.shifts_after == 4
        assert stats.rsds_emitted == 2

    def test_single_statement_nine_point_12_to_4(self):
        _, stats = optimized(kernels.NINE_POINT_CSHIFT, outputs={"DST"})
        assert stats.shifts_before == 12
        assert stats.shifts_after == 4

    def test_figure15_exact_output(self):
        p, _ = optimized(kernels.PURDUE_PROBLEM9, outputs={"T"})
        shifts = shifts_of(p)
        rendered = sorted(str(s) for s in shifts)
        assert rendered == sorted([
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=2,[0:n1+1,*])",
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=2,[0:n1+1,*])",
        ])

    def test_idempotent(self):
        p, _ = optimized(kernels.PURDUE_PROBLEM9, outputs={"T"})
        again = CommUnionPass()
        again.run(p)
        assert len(shifts_of(p)) == 4

    def test_group_broken_by_compute(self):
        # two comm groups separated by a kill of U union independently
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        A = A + 1
        C = CSHIFT(A,SHIFT=1,DIM=1)
        """
        p, stats = optimized(src, outputs={"B", "C"})
        assert stats.groups == 2


class TestSoundness:
    """The unioned communication fills a superset of required cells."""

    @settings(max_examples=40, deadline=None)
    @given(offsets=st.lists(
        st.tuples(st.integers(-2, 2), st.integers(-2, 2)).filter(
            lambda o: any(o)),
        min_size=1, max_size=10, unique=True))
    def test_union_covers_requirements(self, offsets):
        """Execute the unioned calls and check every offset's overlap
        cells are resident (property over random stencil shapes)."""
        from repro.ir.types import Distribution
        from repro.machine import Machine
        from repro.runtime.darray import DArray
        from repro.runtime.distribution import Layout
        from repro.runtime.overlap import overlap_shift

        n = 12
        machine = Machine(grid=(2, 2))
        lay = Layout((n, n), Distribution.block(2), machine.topology)
        da = DArray.create(machine, "U", lay, np.dtype(np.float64),
                           ((2, 2), (2, 2)))
        g = np.arange(n * n, dtype=np.float64).reshape(n, n) + 1
        da.scatter(g)
        for call in union_requirements("U", 2, list(offsets)):
            overlap_shift(machine, da, call.shift, call.dim, rsd=call.rsd)
        # every required displaced cell must hold the wrapped global value
        for pe in machine.topology.ranks():
            (lo0, hi0), (lo1, hi1) = da.owned_box(pe)
            padded = da.padded(pe)
            for (dx, dy) in offsets:
                for gi in range(lo0, hi0 + 1):
                    for gj in range(lo1, hi1 + 1):
                        li = 2 + (gi - lo0) + dx
                        lj = 2 + (gj - lo1) + dy
                        want = g[(gi - 1 + dx) % n, (gj - 1 + dy) % n]
                        assert padded[li, lj] == want, (pe, gi, gj, dx, dy)
