"""Communication unioning tests (paper section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.frontend import parse_program
from repro.ir.nodes import OverlapShift
from repro.ir.rsd import RSD, RSDim
from repro.passes.comm_union import (
    CommUnionPass, requirement_of, union_requirements,
)
from repro.passes.context_partition import ContextPartitionPass
from repro.passes.normalize import NormalizePass
from repro.passes.offset_arrays import OffsetArrayPass


def optimized(src, outputs, bindings=None):
    p = parse_program(src, bindings=bindings or {"N": 16})
    NormalizePass().run(p)
    OffsetArrayPass(outputs=outputs).run(p)
    ContextPartitionPass().run(p)
    pass_ = CommUnionPass()
    pass_.run(p)
    p.validate()
    return p, pass_.stats


def shifts_of(p):
    return [s for s in p.leaf_statements() if isinstance(s, OverlapShift)]


class TestRequirementOf:
    def test_plain_shift(self):
        s = OverlapShift("U", +1, 1)
        assert requirement_of(s, 1) == ("U", (1,), None)

    def test_multi_offset(self):
        s = OverlapShift("U", -1, 2, base_offsets=(1, 0))
        assert requirement_of(s, 2) == ("U", (1, -1), None)

    def test_accumulates_same_dim(self):
        s = OverlapShift("U", 2, 1, base_offsets=(1, 0))
        assert requirement_of(s, 2) == ("U", (3, 0), None)

    def test_eoshift_fill_kind(self):
        s = OverlapShift("U", 1, 1, boundary=2.5)
        assert requirement_of(s, 1) == ("U", (1,), 2.5)

    def test_symbol_rank_pads_trailing_dims(self):
        # a dim-1 shift of a rank-3 array must yield a rank-3 vector;
        # inferring rank from the statement alone truncated it to (1,)
        s = OverlapShift("U", +1, 1)
        assert requirement_of(s, 3) == ("U", (1, 0, 0), None)

    def test_rank_overflow_rejected(self):
        s = OverlapShift("U", +1, 2, base_offsets=(1, 0, 1))
        with pytest.raises(ValueError):
            requirement_of(s, 2)

    def test_pipeline_requirements_full_rank(self):
        # end-to-end: a 3-D kernel shifting only dim 1 must record
        # rank-3 requirement vectors in the pass stats
        src = """
        REAL A(8,8,8), B(8,8,8)
        B = CSHIFT(A,SHIFT=1,DIM=1) + CSHIFT(A,SHIFT=-1,DIM=1)
        """
        p = parse_program(src)
        NormalizePass().run(p)
        OffsetArrayPass(outputs={"B"}).run(p)
        ContextPartitionPass().run(p)
        pass_ = CommUnionPass()
        pass_.run(p)
        assert pass_.stats.requirements
        for array, offs in pass_.stats.requirements:
            assert len(offs) == p.symbols.array(array).type.rank


class TestUnionRequirements:
    def test_nine_point(self):
        offsets = [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
                   if (dx, dy) != (0, 0)]
        calls = union_requirements("U", 2, offsets)
        assert len(calls) == 4
        by_dim = {(c.dim, 1 if c.shift > 0 else -1): c for c in calls}
        assert set(by_dim) == {(1, 1), (1, -1), (2, 1), (2, -1)}
        # dim-1 shifts carry no RSD; dim-2 shifts carry [0:N+1,*]
        assert by_dim[(1, 1)].rsd is None
        assert by_dim[(2, 1)].rsd == RSD((RSDim(1, 1), None))

    def test_subsumption_by_amount(self):
        calls = union_requirements("U", 2, [(2, 0), (1, 0)])
        assert len(calls) == 1
        assert calls[0].shift == 2

    def test_directions_kept_separate(self):
        calls = union_requirements("U", 2, [(1, 0), (-1, 0)])
        assert {c.shift for c in calls} == {-1, 1}

    def test_star_needs_no_rsd(self):
        offsets = [(1, 0), (-1, 0), (0, 1), (0, -1)]
        calls = union_requirements("U", 2, offsets)
        assert len(calls) == 4
        assert all(c.rsd is None for c in calls)

    def test_ascending_dim_order(self):
        offsets = [(1, 1), (1, -1), (-1, 1), (-1, -1)]
        calls = union_requirements("U", 2, offsets)
        dims = [c.dim for c in calls]
        assert dims == sorted(dims)

    def test_radius2_corner_rsd(self):
        calls = union_requirements("U", 2, [(2, 2)])
        dim2 = [c for c in calls if c.dim == 2][0]
        assert dim2.rsd.dims[0] == RSDim(0, 2)
        assert dim2.shift == 2

    def test_3d_box(self):
        import itertools
        offsets = [o for o in itertools.product((-1, 0, 1), repeat=3)
                   if any(o)]
        calls = union_requirements("U", 3, offsets)
        assert len(calls) == 6


class TestPipelineCounts:
    @pytest.mark.parametrize("src,out,expected", [
        (kernels.FIVE_POINT_ARRAY_SYNTAX, "DST", 4),
        (kernels.NINE_POINT_CSHIFT, "DST", 4),
        (kernels.PURDUE_PROBLEM9, "T", 4),
        (kernels.NINE_POINT_ARRAY_SYNTAX, "DST", 4),
        (kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX, "DST", 4),
    ])
    def test_minimal_shift_count_2d(self, src, out, expected):
        p, _ = optimized(src, outputs={out}, bindings={"N": 20})
        assert len(shifts_of(p)) == expected

    def test_problem9_before_after(self):
        _, stats = optimized(kernels.PURDUE_PROBLEM9, outputs={"T"})
        assert stats.shifts_before == 8
        assert stats.shifts_after == 4
        assert stats.rsds_emitted == 2

    def test_single_statement_nine_point_12_to_4(self):
        _, stats = optimized(kernels.NINE_POINT_CSHIFT, outputs={"DST"})
        assert stats.shifts_before == 12
        assert stats.shifts_after == 4

    def test_figure15_exact_output(self):
        p, _ = optimized(kernels.PURDUE_PROBLEM9, outputs={"T"})
        shifts = shifts_of(p)
        rendered = sorted(str(s) for s in shifts)
        assert rendered == sorted([
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=1)",
            "CALL OVERLAP_SHIFT(U,SHIFT=-1,DIM=2,[0:n1+1,*])",
            "CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=2,[0:n1+1,*])",
        ])

    def test_idempotent(self):
        p, _ = optimized(kernels.PURDUE_PROBLEM9, outputs={"T"})
        again = CommUnionPass()
        again.run(p)
        assert len(shifts_of(p)) == 4

    def test_group_broken_by_compute(self):
        # two comm groups separated by a kill of U union independently
        src = """
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        A = A + 1
        C = CSHIFT(A,SHIFT=1,DIM=1)
        """
        p, stats = optimized(src, outputs={"B", "C"})
        assert stats.groups == 2


def _call_covers(call, rank, o):
    """Does one canonical call make total offset ``o`` resident?"""
    d = call.dim - 1
    if o[d] == 0 or (o[d] > 0) != (call.shift > 0):
        return False
    if abs(o[d]) > abs(call.shift):
        return False
    for k in range(rank):
        if k == d:
            continue
        lo = hi = 0
        if call.rsd is not None and call.rsd.dims[k] is not None:
            lo, hi = call.rsd.dims[k].lo, call.rsd.dims[k].hi
        if o[k] < -lo or o[k] > hi:
            return False
    return True


class TestExactCoverage:
    """Unioned calls cover exactly the un-unioned requirement set:
    every requirement is covered, and every call parameter (shift
    amount, each RSD bound) is attained by some requirement — no
    gratuitous widening."""

    @settings(max_examples=60, deadline=None)
    @given(rank=st.integers(2, 3), data=st.data())
    def test_union_covers_exactly(self, rank, data):
        offsets = data.draw(st.lists(
            st.tuples(*[st.integers(-2, 2)] * rank).filter(
                lambda o: any(o)),
            min_size=1, max_size=12, unique=True))
        stmts = []
        for o in offsets:
            # realise each requirement the way the offset pass does:
            # shift the highest nonzero dim, carry the rest as base
            d = max(k for k in range(rank) if o[k] != 0)
            base = tuple(o[k] if k != d else 0 for k in range(rank))
            stmts.append(OverlapShift("U", o[d], d + 1,
                                      base_offsets=base))
        reqs = [requirement_of(s, rank)[1] for s in stmts]
        assert sorted(reqs) == sorted(offsets)

        calls = union_requirements("U", rank, reqs)
        # one call per populated (dim, direction) class
        wanted = {(d, o[d] > 0) for o in reqs for d in range(rank)
                  if o[d] != 0}
        got = {(c.dim - 1, c.shift > 0) for c in calls}
        assert got == wanted
        # completeness: the ascending chain delivers every requirement —
        # each prefix (o_0..o_d, 0..0) is covered by dim d's call
        for o in reqs:
            for d in (k for k in range(rank) if o[k] != 0):
                prefix = tuple(v if k <= d else 0
                               for k, v in enumerate(o))
                assert any(_call_covers(c, rank, prefix)
                           for c in calls), (o, d, calls)
        # exactness: every call parameter attained by a requirement
        for c in calls:
            d = c.dim - 1
            mine = [o for o in reqs
                    if o[d] != 0 and (o[d] > 0) == (c.shift > 0)]
            assert abs(c.shift) == max(abs(o[d]) for o in mine)
            for k in range(rank):
                if k == d:
                    continue
                lo = hi = 0
                if c.rsd is not None and c.rsd.dims[k] is not None:
                    lo, hi = c.rsd.dims[k].lo, c.rsd.dims[k].hi
                if k < d:
                    assert lo == max((-o[k] for o in mine if o[k] < 0),
                                     default=0)
                    assert hi == max((o[k] for o in mine if o[k] > 0),
                                     default=0)
                else:
                    assert (lo, hi) == (0, 0)


class TestSoundness:
    """The unioned communication fills a superset of required cells."""

    @settings(max_examples=40, deadline=None)
    @given(offsets=st.lists(
        st.tuples(st.integers(-2, 2), st.integers(-2, 2)).filter(
            lambda o: any(o)),
        min_size=1, max_size=10, unique=True))
    def test_union_covers_requirements(self, offsets):
        """Execute the unioned calls and check every offset's overlap
        cells are resident (property over random stencil shapes)."""
        from repro.ir.types import Distribution
        from repro.machine import Machine
        from repro.runtime.darray import DArray
        from repro.runtime.distribution import Layout
        from repro.runtime.overlap import overlap_shift

        n = 12
        machine = Machine(grid=(2, 2))
        lay = Layout((n, n), Distribution.block(2), machine.topology)
        da = DArray.create(machine, "U", lay, np.dtype(np.float64),
                           ((2, 2), (2, 2)))
        g = np.arange(n * n, dtype=np.float64).reshape(n, n) + 1
        da.scatter(g)
        for call in union_requirements("U", 2, list(offsets)):
            overlap_shift(machine, da, call.shift, call.dim, rsd=call.rsd)
        # every required displaced cell must hold the wrapped global value
        for pe in machine.topology.ranks():
            (lo0, hi0), (lo1, hi1) = da.owned_box(pe)
            padded = da.padded(pe)
            for (dx, dy) in offsets:
                for gi in range(lo0, hi0 + 1):
                    for gj in range(lo1, hi1 + 1):
                        li = 2 + (gi - lo0) + dx
                        lj = 2 + (gj - lo1) + dy
                        want = g[(gi - 1 + dx) % n, (gj - 1 + dy) % n]
                        assert padded[li, lj] == want, (pe, gi, gj, dx, dy)
