"""Loop-invariant communication motion tests (extension pass)."""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.frontend import parse_program
from repro.machine import Machine
from repro.runtime.reference import evaluate

#: a variable-coefficient stencil: K never changes inside the time loop,
#: so its overlap fills can hoist; U changes every iteration and cannot
VARCOEFF = """
      REAL, DIMENSION(N,N) :: U, T, K1
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ ALIGN T WITH U
!HPF$ ALIGN K1 WITH U
      DO STEP = 1, NSTEPS
        T = U + 0.25 * ( CSHIFT(K1,1,1) * CSHIFT(U,1,1)
     &                 + CSHIFT(K1,-1,1) * CSHIFT(U,-1,1) )
        U = T
      ENDDO
"""


def compiled(hoist, n=16, nsteps=4):
    return compile_hpf(VARCOEFF, bindings={"N": n, "NSTEPS": nsteps},
                       level="O4", outputs={"U"}, hoist_comm=hoist)


class TestHoisting:
    def test_invariant_shifts_hoisted(self):
        cp = compiled(hoist=True)
        stats = cp.report.pass_stats["comm-motion"]
        assert stats.hoisted == 2  # K1's two shifts leave the loop

    def test_variant_shifts_stay(self):
        cp = compiled(hoist=True)
        from repro.compiler.plan import OverlapShiftOp, SeqLoopOp
        loop = next(op for op in cp.plan.ops
                    if isinstance(op, SeqLoopOp))
        inside = [op for op in loop.body
                  if isinstance(op, OverlapShiftOp)]
        assert {op.array for op in inside} == {"U"}
        outside = [op for op in cp.plan.ops
                   if isinstance(op, OverlapShiftOp)]
        assert {op.array for op in outside} == {"K1"}

    def test_message_reduction(self):
        nsteps = 8
        k1 = np.abs(np.random.default_rng(0).standard_normal(
            (16, 16))).astype(np.float32)
        u = np.random.default_rng(1).standard_normal(
            (16, 16)).astype(np.float32)
        msgs = {}
        for hoist in (False, True):
            cp = compiled(hoist, nsteps=nsteps)
            res = cp.run(Machine(grid=(2, 2)),
                         inputs={"U": u, "K1": k1})
            msgs[hoist] = res.report.messages
        # without hoisting: 4 shifts x 4 PEs x nsteps;
        # with: 2 x 4 x nsteps + 2 x 4 once
        assert msgs[False] == 4 * 4 * nsteps
        assert msgs[True] == 2 * 4 * nsteps + 2 * 4

    def test_semantics_preserved(self):
        k1 = np.abs(np.random.default_rng(2).standard_normal(
            (16, 16))).astype(np.float32)
        u = np.random.default_rng(3).standard_normal(
            (16, 16)).astype(np.float32)
        ref = evaluate(parse_program(VARCOEFF,
                                     bindings={"N": 16, "NSTEPS": 4}),
                       inputs={"U": u, "K1": k1})["U"]
        for hoist in (False, True):
            res = compiled(hoist).run(Machine(grid=(2, 2)),
                                      inputs={"U": u, "K1": k1})
            np.testing.assert_allclose(res.arrays["U"], ref, rtol=1e-5,
                                       err_msg=f"hoist={hoist}")

    def test_modelled_time_improves(self):
        times = {}
        for hoist in (False, True):
            res = compiled(hoist, nsteps=8).run(Machine(grid=(2, 2)))
            times[hoist] = res.modelled_time
        assert times[True] < times[False]


class TestSafety:
    def test_killed_base_not_hoisted(self):
        src = """
        REAL U(16,16), T(16,16)
        DO STEP = 1, 3
          T = CSHIFT(U,1,1) + U
          U = T
        ENDDO
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"U"}, hoist_comm=True)
        assert cp.report.pass_stats["comm-motion"].hoisted == 0

    def test_nested_loops_hoist_all_the_way(self):
        src = """
        REAL U(16,16), T(16,16), K1(16,16)
        DO A = 1, 2
          DO B = 1, 2
            T = CSHIFT(K1,1,1) + U
            U = T
          ENDDO
        ENDDO
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"U"}, hoist_comm=True)
        from repro.compiler.plan import OverlapShiftOp, SeqLoopOp
        top_level_shifts = [op for op in cp.plan.ops
                            if isinstance(op, OverlapShiftOp)]
        assert len(top_level_shifts) == 1  # hoisted through both loops

    def test_do_while_hoisting(self):
        src = """
        REAL U(16,16), T(16,16), K1(16,16)
        S = 2.0
        DO WHILE (S > 0.5)
          T = CSHIFT(K1,1,1) + U
          U = T
          S = S - 1.0
        ENDDO
        """
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"U"}, hoist_comm=True)
        assert cp.report.pass_stats["comm-motion"].hoisted == 1

    def test_off_by_default(self):
        cp = compiled(hoist=False)
        assert "comm-motion" not in cp.report.pass_stats
