"""Parser tests: declarations, directives, statements, expressions."""

import pytest

from repro import kernels
from repro.errors import (
    ParseError, SemanticError, UnsupportedDistributionError,
    UnsupportedFeatureError,
)
from repro.frontend import parse_program
from repro.ir.nodes import (
    Allocate, ArrayAssign, ArrayRef, BinOp, CShift, Deallocate, DoLoop,
    EOShift, If, OffsetRef, ScalarAssign, ScalarRef,
)
from repro.ir.types import DistKind, ScalarKind


def parse(src, **bindings):
    return parse_program(src, bindings=bindings or None)


class TestDeclarations:
    def test_dimension_attribute(self):
        p = parse("REAL, DIMENSION(8,8) :: A, B\nA = B")
        assert p.symbols.array("A").type.shape == (8, 8)
        assert p.symbols.array("B").type.element is ScalarKind.REAL

    def test_entity_dimension(self):
        p = parse("DOUBLE PRECISION A(4,6)\nA = 0")
        sym = p.symbols.array("A")
        assert sym.type.shape == (4, 6)
        assert sym.type.element is ScalarKind.DOUBLE

    def test_parameter_statement(self):
        p = parse("PARAMETER (N = 10)\nREAL A(N,N)\nA = 0")
        assert p.symbols.array("A").type.shape == (10, 10)

    def test_typed_parameter(self):
        p = parse("INTEGER, PARAMETER :: N = 4\nREAL A(N)\nA = 0")
        assert p.symbols.array("A").type.shape == (4,)

    def test_binding_supplies_parameter(self):
        p = parse("REAL A(N,N)\nA = 0", N=12)
        assert p.symbols.array("A").type.shape == (12, 12)

    def test_parameter_arithmetic(self):
        p = parse("PARAMETER (N = 4)\nREAL A(2*N+1)\nA = 0")
        assert p.symbols.array("A").type.shape == (9,)

    def test_default_distribution_is_block(self):
        p = parse("REAL A(8,8)\nA = 0")
        assert p.symbols.array("A").distribution.dims == (
            DistKind.BLOCK, DistKind.BLOCK)

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(SemanticError):
            parse("REAL A(4)\nREAL A(4)\nA = 0")

    def test_scalar_declaration(self):
        p = parse("REAL ALPHA\nALPHA = 2.5")
        assert p.symbols.is_scalar("ALPHA")


class TestDirectives:
    def test_distribute(self):
        p = parse("REAL A(8,8)\n!HPF$ DISTRIBUTE A(BLOCK,*)\nA = 0")
        assert p.symbols.array("A").distribution.dims == (
            DistKind.BLOCK, DistKind.COLLAPSED)

    def test_align_copies_distribution(self):
        p = parse("REAL A(8,8), B(8,8)\n"
                  "!HPF$ DISTRIBUTE A(BLOCK,*)\n"
                  "!HPF$ ALIGN B WITH A\nB = A")
        assert p.symbols.array("B").distribution.dims == (
            DistKind.BLOCK, DistKind.COLLAPSED)

    def test_cyclic_rejected(self):
        with pytest.raises(UnsupportedDistributionError):
            parse("REAL A(8)\n!HPF$ DISTRIBUTE A(CYCLIC)\nA = 0")

    def test_processors_ignored(self):
        p = parse("REAL A(8)\n!HPF$ PROCESSORS P(4)\nA = 0")
        assert len(p.body) == 1

    def test_distribute_rank_mismatch(self):
        with pytest.raises(SemanticError):
            parse("REAL A(8,8)\n!HPF$ DISTRIBUTE A(BLOCK)\nA = 0")


class TestStatements:
    def test_whole_array_assign(self):
        p = parse("REAL A(4), B(4)\nA = B")
        stmt = p.body[0]
        assert isinstance(stmt, ArrayAssign)
        assert stmt.lhs.section is None

    def test_section_assign(self):
        p = parse("REAL A(8,8)\nA(2:N-1,2:N-1) = 0", N=8)
        stmt = p.body[0]
        assert isinstance(stmt, ArrayAssign)
        assert str(stmt.lhs) == "A(2:N-1,2:N-1)"

    def test_scalar_assign_autodeclares(self):
        p = parse("X = 1.5")
        assert isinstance(p.body[0], ScalarAssign)
        assert p.symbols.is_scalar("X")

    def test_allocate_deferred(self):
        p = parse("REAL, ALLOCATABLE :: T(:,:)\nALLOCATE(T(8,8))\nT = 0\n"
                  "DEALLOCATE(T)")
        assert isinstance(p.body[0], Allocate)
        assert isinstance(p.body[2], Deallocate)
        assert p.symbols.array("T").is_temporary

    def test_use_before_allocate_rejected(self):
        with pytest.raises(SemanticError):
            parse("REAL, ALLOCATABLE :: T(:,:)\nT = 0")

    def test_do_loop(self):
        p = parse("REAL A(4)\nDO K = 1, 10\nA = A + 1\nENDDO")
        loop = p.body[0]
        assert isinstance(loop, DoLoop)
        assert loop.var == "K" and len(loop.body) == 1

    def test_end_do_two_words(self):
        p = parse("REAL A(4)\nDO K = 1, 3\nA = A + 1\nEND DO")
        assert isinstance(p.body[0], DoLoop)

    def test_if_then_else(self):
        p = parse("REAL A(4)\nIF (X < 1) THEN\nA = 0\nELSE\nA = 1\nENDIF")
        stmt = p.body[0]
        assert isinstance(stmt, If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_assign_to_parameter_rejected(self):
        with pytest.raises(SemanticError):
            parse("PARAMETER (N = 4)\nN = 5")

    def test_where_lowered(self):
        p = parse("REAL A(4)\nWHERE (A > 0)\nA = 1\nEND WHERE")
        assert len(p.body) == 2  # mask materialisation + masked assign
        assert p.body[1].mask is not None

    def test_nested_do_loops(self):
        p = parse("REAL A(4)\nDO I = 1, 2\nDO J = 1, 3\nA = A + 1\n"
                  "ENDDO\nENDDO")
        outer = p.body[0]
        assert isinstance(outer, DoLoop)
        assert isinstance(outer.body[0], DoLoop)

    def test_nested_if(self):
        p = parse("REAL A(4)\nIF (X < 1) THEN\nIF (Y < 1) THEN\nA = 1\n"
                  "ENDIF\nENDIF")
        assert isinstance(p.body[0].then_body[0], If)


class TestExpressions:
    def test_cshift_keyword_args(self):
        p = parse("REAL A(4,4), B(4,4)\nA = CSHIFT(B,SHIFT=-1,DIM=2)")
        rhs = p.body[0].rhs
        assert isinstance(rhs, CShift)
        assert (rhs.shift, rhs.dim) == (-1, 2)

    def test_cshift_positional_args(self):
        p = parse("REAL A(4,4), B(4,4)\nA = CSHIFT(B,+1,2)")
        rhs = p.body[0].rhs
        assert (rhs.shift, rhs.dim) == (1, 2)

    def test_cshift_default_dim(self):
        p = parse("REAL A(4), B(4)\nA = CSHIFT(B,1)")
        assert p.body[0].rhs.dim == 1

    def test_nested_cshift(self):
        p = parse("REAL A(4,4), B(4,4)\nA = CSHIFT(CSHIFT(B,-1,1),+1,2)")
        outer = p.body[0].rhs
        assert isinstance(outer, CShift) and isinstance(outer.array, CShift)

    def test_eoshift(self):
        p = parse("REAL A(4), B(4)\nA = EOSHIFT(B,SHIFT=1,BOUNDARY=9.0)")
        rhs = p.body[0].rhs
        assert isinstance(rhs, EOShift) and rhs.boundary == 9.0

    def test_nonconstant_shift_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("REAL A(4), B(4)\nK = 1\nA = CSHIFT(B,K)")

    def test_precedence(self):
        p = parse("X = 1 + 2 * 3")
        rhs = p.body[0].rhs
        assert isinstance(rhs, BinOp) and rhs.op == "+"
        assert isinstance(rhs.right, BinOp) and rhs.right.op == "*"

    def test_parentheses(self):
        p = parse("X = (1 + 2) * 3")
        rhs = p.body[0].rhs
        assert rhs.op == "*"

    def test_unary_minus(self):
        p = parse("X = -Y")
        assert str(p.body[0].rhs) == "-(Y)"

    def test_param_stays_symbolic(self):
        p = parse("PARAMETER (N = 4)\nX = N + 1")
        assert isinstance(p.body[0].rhs.left, ScalarRef)

    def test_section_rank_mismatch(self):
        with pytest.raises(SemanticError):
            parse("REAL A(4,4)\nA(1:2) = 0")

    def test_scalar_subscript_is_single_element_section(self):
        p = parse("REAL A(8,8)\nA(3,4:5) = 0")
        sec = p.body[0].lhs.section
        assert str(sec[0]) == "3:3" and str(sec[1]) == "4:5"


class TestPaperKernels:
    @pytest.mark.parametrize("src,nstmts", [
        (kernels.FIVE_POINT_ARRAY_SYNTAX, 1),
        (kernels.NINE_POINT_CSHIFT, 1),
        (kernels.PURDUE_PROBLEM9, 9),
        (kernels.NINE_POINT_ARRAY_SYNTAX, 1),
    ])
    def test_kernels_parse(self, src, nstmts):
        p = parse_program(src, bindings={"N": 16})
        assert len(p.body) == nstmts
        p.validate()

    def test_problem9_statements(self):
        p = parse_program(kernels.PURDUE_PROBLEM9, bindings={"N": 16})
        first = p.body[0]
        assert isinstance(first, ArrayAssign)
        assert first.lhs.name == "RIP"
        assert isinstance(first.rhs, CShift)
