"""Lexer tests: continuations, directives, comments, literals."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src) if t.kind not in ("NEWLINE", "EOF")]


class TestBasics:
    def test_simple_assignment(self):
        assert texts("A = B + 1") == ["A", "=", "B", "+", "1"]

    def test_case_insensitive_upcased(self):
        assert texts("real x") == ["REAL", "X"]

    def test_float_forms(self):
        assert texts("1.5 1.0E-3 .5 2D0") == ["1.5", "1.0E-3", ".5", "2D0"]

    def test_comment_stripped(self):
        assert texts("A = 1 ! trailing comment") == ["A", "=", "1"]

    def test_blank_lines_skipped(self):
        toks = tokenize("\n\nA = 1\n\n")
        assert [t.kind for t in toks] == ["NAME", "=", "INT", "NEWLINE",
                                          "EOF"]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("A = #")

    def test_position_reported(self):
        tok = tokenize("  FOO")[0]
        assert (tok.line, tok.column) == (1, 3)


class TestContinuations:
    def test_trailing_ampersand(self):
        assert texts("A = B + &\n    C") == ["A", "=", "B", "+", "C"]

    def test_leading_ampersand_fixed_form(self):
        assert texts("A = B\n     & + C") == ["A", "=", "B", "+", "C"]

    def test_both_styles(self):
        assert texts("A = B + &\n     & C") == ["A", "=", "B", "+", "C"]

    def test_multi_line_paper_style(self):
        src = ("DST = C1 * SRC\n"
               "     & + C2 * SRC\n"
               "     & + C3 * SRC\n")
        assert texts(src).count("SRC") == 3
        assert kinds(src).count("NEWLINE") == 1


class TestDirectives:
    def test_hpf_directive_flagged(self):
        toks = tokenize("!HPF$ DISTRIBUTE U(BLOCK,BLOCK)")
        assert toks[0].kind == "HPFDIR"
        assert toks[1].text == "DISTRIBUTE"

    def test_chpf_directive(self):
        toks = tokenize("CHPF$ ALIGN T WITH U")
        assert toks[0].kind == "HPFDIR"

    def test_plain_comment_not_directive(self):
        assert tokenize("! just a comment")[0].kind == "EOF"

    def test_case_insensitive_directive(self):
        assert tokenize("!hpf$ DISTRIBUTE U(BLOCK)")[0].kind == "HPFDIR"


class TestOperators:
    def test_relational(self):
        assert texts("A <= B >= C == D /= E") == [
            "A", "<=", "B", ">=", "C", "==", "D", "/=", "E"]

    def test_double_colon(self):
        assert texts("REAL :: X")[1] == "::"

    def test_brackets(self):
        assert texts("[0:5]") == ["[", "0", ":", "5", "]"]
