"""Frontend robustness: fuzzing and diagnostic quality.

The lexer/parser must never crash with anything but the package's own
typed errors, and diagnostics must carry source positions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, SourceError
from repro.frontend import parse_program, tokenize
from repro.frontend.lexer import Token


class TestLexerFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    def test_tokenize_never_crashes_unexpectedly(self, text):
        try:
            tokens = tokenize(text)
        except ReproError:
            return  # typed failure is fine
        assert tokens[-1].kind == "EOF"
        assert all(isinstance(t, Token) for t in tokens)

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="ABC123+-*/(),:=<>. \n&!", max_size=120))
    def test_fortran_flavoured_fuzz(self, text):
        try:
            tokenize(text)
        except ReproError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="ABCN(),=+*: \n0123456789", max_size=100))
    def test_parser_never_crashes_unexpectedly(self, text):
        try:
            parse_program(text, bindings={"N": 8})
        except ReproError:
            pass


class TestDiagnostics:
    def err(self, src, **bindings):
        with pytest.raises(SourceError) as exc:
            parse_program(src, bindings=bindings or None)
        return str(exc.value)

    def test_lex_error_has_position(self):
        msg = self.err("REAL A(4)\nA = #")
        assert "line 2" in msg

    def test_parse_error_names_token(self):
        msg = self.err("REAL A(4)\nA = +")
        assert "line 2" in msg

    def test_undeclared_shift_argument(self):
        msg = self.err("REAL A(4,4)\nA = CSHIFT(B,1,1)\nB = 0")
        assert "undeclared" in msg and "line 2" in msg

    def test_cyclic_explains_scope(self):
        msg = self.err("REAL A(4)\n!HPF$ DISTRIBUTE A(CYCLIC)\nA = 0")
        assert "BLOCK" in msg  # the message points at the paper's scope

    def test_unbound_parameter_named(self):
        msg = self.err("REAL A(N,N)\nA = 0")
        assert "N" in msg

    def test_rank_mismatch_message(self):
        msg = self.err("REAL A(4,4)\nA(1:2) = 0")
        assert "rank" in msg.lower()

    def test_scalar_array_confusion(self):
        msg = self.err("REAL A(4,4)\nX = A")
        assert "SUM" in msg  # suggests the reduction route


class TestMixedTypes:
    def test_integer_arrays_supported(self):
        import numpy as np
        from repro.compiler import compile_hpf
        from repro.machine import Machine
        src = """
        INTEGER A(16,16), B(16,16)
        A = B + CSHIFT(B,1,1)
        """
        b = np.arange(256, dtype=np.int32).reshape(16, 16)
        cp = compile_hpf(src, bindings={"N": 16}, level="O4",
                         outputs={"A"})
        res = cp.run(Machine(grid=(2, 2)), inputs={"B": b})
        expected = b + np.roll(b, -1, axis=0)
        np.testing.assert_array_equal(res.arrays["A"], expected)

    def test_logical_array_declaration(self):
        from repro.ir.types import ScalarKind
        p = parse_program("LOGICAL M(8,8)\nREAL A(8,8)\nA = 0")
        assert p.symbols.array("M").type.element is ScalarKind.LOGICAL
