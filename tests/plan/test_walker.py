"""The uniform children()/rebuild() walker over nested plan ops.

Regression tests for the coverage gap the old ad-hoc traversal had:
``Plan.count_ops``/``walk_ops`` must see ops nested inside ``CondOp``
branches, ``WhileOp``/``SeqLoopOp`` bodies, and both blocks of an
``OverlappedOp`` — at any nesting depth.
"""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.plan import (
    AllocOp, CondOp, FreeOp, LoopNestOp, OverlappedOp, OverlapShiftOp,
    SeqLoopOp, WhileOp, map_blocks, walk,
)
from repro.ir.linexpr import LinExpr

from tests.plan.helpers import OffsetRef, copy_nest, scalar_true, \
    simple_plan


def shift(array: str = "U", s: int = 1, dim: int = 1) -> OverlapShiftOp:
    return OverlapShiftOp(array=array, shift=s, dim=dim)


def deeply_nested_plan():
    """Shifts and nests hidden inside every container op kind."""
    inner_loop = SeqLoopOp(
        var="KK", lo=LinExpr(1), hi=LinExpr(2),
        body=[shift(s=-1), copy_nest("V", "U", (-1, 0))])
    cond = CondOp(
        cond=scalar_true(),
        then_ops=[shift(s=1), copy_nest("V", "U", (1, 0))],
        else_ops=[OverlappedOp(
            comm_ops=[shift(s=1), shift(s=1, dim=2)],
            nest=copy_nest("V", "U", (1, 1)))])
    while_op = WhileOp(cond=scalar_true(), body=[cond])
    return simple_plan(
        [AllocOp(names=("V",)), inner_loop, while_op,
         FreeOp(names=("V",))])


def test_count_ops_sees_through_every_container():
    plan = deeply_nested_plan()
    # 1 in the seq loop, 1 in the then-branch, 2 in the OverlappedOp
    # comm block (inside else inside while)
    assert plan.count_ops(OverlapShiftOp) == 4
    # copy nests: seq-loop body, then-branch, OverlappedOp nest block
    assert plan.count_ops(LoopNestOp) == 3
    assert plan.count_ops(CondOp) == 1
    assert plan.count_ops(WhileOp) == 1
    assert plan.count_ops(OverlappedOp) == 1


def test_walk_is_preorder_and_complete():
    plan = deeply_nested_plan()
    kinds = [type(op).__name__ for op in plan.walk_ops()]
    # container before its contents
    assert kinds.index("SeqLoopOp") < kinds.index("OverlapShiftOp")
    assert kinds.index("WhileOp") < kinds.index("CondOp")
    assert kinds.index("CondOp") < kinds.index("OverlappedOp")
    assert len(kinds) == len(list(walk(plan.ops)))
    assert kinds.count("OverlapShiftOp") == 4


def test_overlapped_op_walks_comm_block_then_nest():
    op = OverlappedOp(comm_ops=[shift(s=1), shift(s=-1)],
                      nest=copy_nest("V", "U", (1, 0)))
    kinds = [type(o).__name__ for o in walk([op])]
    assert kinds == ["OverlappedOp", "OverlapShiftOp", "OverlapShiftOp",
                     "LoopNestOp"]


def test_map_blocks_rewrites_nested_blocks():
    plan = deeply_nested_plan()

    def drop_shifts(block):
        return [op for op in block
                if not isinstance(op, OverlapShiftOp)]

    # OverlappedOp's nest block must keep its single LoopNestOp, so
    # only rewrite the other blocks
    def rewrite(block):
        if len(block) == 1 and isinstance(block[0], LoopNestOp):
            return block
        return drop_shifts(block)

    new_ops = map_blocks(plan.ops, rewrite)
    assert sum(1 for op in walk(new_ops)
               if isinstance(op, OverlapShiftOp)) == 0
    # the original plan is untouched (rebuild copies containers)
    assert plan.count_ops(OverlapShiftOp) == 4


def test_map_blocks_identity_preserves_structure():
    plan = deeply_nested_plan()
    new_ops = map_blocks(plan.ops, lambda block: block)
    assert [type(o).__name__ for o in walk(new_ops)] == \
        [type(o).__name__ for o in plan.walk_ops()]


def test_leaf_rebuild_rejects_blocks():
    with pytest.raises(PipelineError):
        shift().rebuild([])


def test_overlapped_rebuild_demands_single_nest():
    op = OverlappedOp(comm_ops=[shift()],
                      nest=copy_nest("V", "U", (1, 0)))
    with pytest.raises(PipelineError):
        op.rebuild([shift()], [])
    with pytest.raises(PipelineError):
        op.rebuild([shift()], [shift()])


def test_compiled_plans_expose_nested_ops(machine2x2):
    # a DO-wrapped kernel puts comms inside a SeqLoopOp; count_ops must
    # still see them
    from repro.compiler import compile_hpf
    src = """
      REAL, DIMENSION(N,N) :: A, B
!HPF$ DISTRIBUTE A(BLOCK,BLOCK)
!HPF$ ALIGN B WITH A
      DO KK = 1, 2
        B = CSHIFT(A,SHIFT=1,DIM=1) + A
        A = B
      ENDDO
"""
    compiled = compile_hpf(src, bindings={"N": 8}, level="O4",
                           outputs={"A", "B"})
    assert compiled.plan.count_ops(SeqLoopOp) == 1
    assert compiled.plan.count_ops(OverlapShiftOp) >= 1
    in_loop = [op for op in compiled.plan.walk_ops()
               if isinstance(op, SeqLoopOp)]
    assert sum(1 for op in walk(in_loop[0].body)
               if isinstance(op, OverlapShiftOp)) >= 1
