"""Versioned JSON (de)serialization of plans and compiled programs.

The round-trip contract: ``plan_to_json`` output is a serialization
fixed point (revive + re-serialize is byte-identical), and a revived
program executes to bitwise-identical arrays and cost reports on both
backends — for every named kernel at every optimization level.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.kernels import KERNELS, compile_kernel
from repro.plan import (
    PLAN_SCHEMA_VERSION, plan_from_json, plan_to_json,
    program_from_json, program_to_json,
)
from repro.testing import plan_roundtrip_check

LEVELS = ["O0", "O1", "O2", "O3", "O4"]


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("level", LEVELS)
def test_plan_json_is_a_fixed_point(kernel, level):
    compiled = compile_kernel(kernel, bindings={"N": 12}, level=level)
    doc = plan_to_json(compiled.plan)
    assert plan_to_json(plan_from_json(doc)) == doc


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_revived_programs_execute_identically(kernel):
    import numpy as np
    compiled = compile_kernel(kernel, bindings={"N": 12}, level="O4")
    rng = np.random.default_rng(0)
    inputs = {
        name: rng.standard_normal(d.shape).astype(d.dtype)
        for name, d in compiled.plan.arrays.items()
        if name in compiled.plan.entry_arrays}
    plan_roundtrip_check(compiled, inputs)


@pytest.mark.parametrize("level", LEVELS)
def test_every_level_round_trips_through_execution(level):
    import numpy as np
    compiled = compile_kernel("purdue9", bindings={"N": 12},
                              level=level)
    rng = np.random.default_rng(1)
    inputs = {
        name: rng.standard_normal(d.shape).astype(d.dtype)
        for name, d in compiled.plan.arrays.items()
        if name in compiled.plan.entry_arrays}
    plan_roundtrip_check(compiled, inputs)


def test_schema_version_is_stamped_and_checked():
    compiled = compile_kernel("five_point", bindings={"N": 8})
    doc = json.loads(plan_to_json(compiled.plan))
    assert doc["schema"] == PLAN_SCHEMA_VERSION
    doc["schema"] = PLAN_SCHEMA_VERSION + 1
    with pytest.raises(ReproError):
        plan_from_json(json.dumps(doc))


def test_program_document_carries_report_and_name():
    compiled = compile_kernel("purdue9", bindings={"N": 8},
                              plan_passes=True)
    doc = program_to_json(compiled)
    revived = program_from_json(doc)
    assert revived.source_name == compiled.source_name
    assert revived.report.level == compiled.report.level
    assert revived.report.overlap_shifts == \
        compiled.report.overlap_shifts
    assert revived.report.pass_stats["plan-passes"] == \
        compiled.report.pass_stats["plan-passes"]
    assert program_to_json(revived) == doc


def test_garbage_rejected():
    with pytest.raises(ReproError):
        plan_from_json("{\"not\": \"a plan\"}")


# ---------------------------------------------------------------------------
# schema v2: loop containers, SwapOp, and the outputs field
# ---------------------------------------------------------------------------

def _swap_loop_plan(halo: int, trips: int, outputs):
    """A hand-built double-buffer loop already in post-pass form."""
    from dataclasses import replace

    from repro.ir.linexpr import LinExpr
    from repro.plan import AllocOp, FreeOp, SeqLoopOp, SwapOp

    from tests.plan.helpers import OffsetRef, decl, nest, simple_plan

    h = ((halo, halo), (halo, halo))
    arrays = {"U": decl("U", halo=h),
              "V": decl("V", halo=h, temporary=True)}
    body = [nest("V", OffsetRef("U", (0, 0))), SwapOp("V", "U")]
    plan = simple_plan(
        [AllocOp(names=("V",)),
         SeqLoopOp(var="K", lo=LinExpr(1), hi=LinExpr(trips),
                   body=body),
         FreeOp(names=("V",))], arrays=arrays)
    return replace(plan, outputs=outputs)


@settings(max_examples=25, deadline=None)
@given(halo=st.integers(0, 2), trips=st.integers(1, 4),
       outputs=st.sampled_from([None, ("U",), ("U", "V")]))
def test_swap_loop_plans_round_trip(halo, trips, outputs):
    from repro.plan import SwapOp, verify_plan

    plan = _swap_loop_plan(halo, trips, outputs)
    assert verify_plan(plan) == []
    doc = plan_to_json(plan)
    revived = plan_from_json(doc)
    assert plan_to_json(revived) == doc
    assert revived.outputs == outputs
    loop = revived.ops[1]
    assert [(op.a, op.b) for op in loop.body
            if isinstance(op, SwapOp)] == [("V", "U")]
