"""Versioned JSON (de)serialization of plans and compiled programs.

The round-trip contract: ``plan_to_json`` output is a serialization
fixed point (revive + re-serialize is byte-identical), and a revived
program executes to bitwise-identical arrays and cost reports on both
backends — for every named kernel at every optimization level.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.kernels import KERNELS, compile_kernel
from repro.plan import (
    PLAN_SCHEMA_VERSION, plan_from_json, plan_to_json,
    program_from_json, program_to_json,
)
from repro.testing import plan_roundtrip_check

LEVELS = ["O0", "O1", "O2", "O3", "O4"]


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("level", LEVELS)
def test_plan_json_is_a_fixed_point(kernel, level):
    compiled = compile_kernel(kernel, bindings={"N": 12}, level=level)
    doc = plan_to_json(compiled.plan)
    assert plan_to_json(plan_from_json(doc)) == doc


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_revived_programs_execute_identically(kernel):
    import numpy as np
    compiled = compile_kernel(kernel, bindings={"N": 12}, level="O4")
    rng = np.random.default_rng(0)
    inputs = {
        name: rng.standard_normal(d.shape).astype(d.dtype)
        for name, d in compiled.plan.arrays.items()
        if name in compiled.plan.entry_arrays}
    plan_roundtrip_check(compiled, inputs)


@pytest.mark.parametrize("level", LEVELS)
def test_every_level_round_trips_through_execution(level):
    import numpy as np
    compiled = compile_kernel("purdue9", bindings={"N": 12},
                              level=level)
    rng = np.random.default_rng(1)
    inputs = {
        name: rng.standard_normal(d.shape).astype(d.dtype)
        for name, d in compiled.plan.arrays.items()
        if name in compiled.plan.entry_arrays}
    plan_roundtrip_check(compiled, inputs)


def test_schema_version_is_stamped_and_checked():
    compiled = compile_kernel("five_point", bindings={"N": 8})
    doc = json.loads(plan_to_json(compiled.plan))
    assert doc["schema"] == PLAN_SCHEMA_VERSION
    doc["schema"] = PLAN_SCHEMA_VERSION + 1
    with pytest.raises(ReproError):
        plan_from_json(json.dumps(doc))


def test_program_document_carries_report_and_name():
    compiled = compile_kernel("purdue9", bindings={"N": 8},
                              plan_passes=True)
    doc = program_to_json(compiled)
    revived = program_from_json(doc)
    assert revived.source_name == compiled.source_name
    assert revived.report.level == compiled.report.level
    assert revived.report.overlap_shifts == \
        compiled.report.overlap_shifts
    assert revived.report.pass_stats["plan-passes"] == \
        compiled.report.pass_stats["plan-passes"]
    assert program_to_json(revived) == doc


def test_garbage_rejected():
    with pytest.raises(ReproError):
        plan_from_json("{\"not\": \"a plan\"}")
