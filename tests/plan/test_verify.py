"""The plan verifier: corrupted plans are rejected, real plans pass.

The acceptance bar: at least five *distinct* hand-corrupted plans are
rejected with actionable errors (missing overlap shift, undersized halo,
use-after-free, out-of-bounds RSD, alloc/free mismatch), and every named
kernel's plan at every optimization level verifies clean on both
backends' shared plan.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import PlanVerificationError
from repro.ir.rsd import RSD, RSDim
from repro.kernels import KERNELS, compile_kernel
from repro.plan import (
    AllocOp, FreeOp, OverlapShiftOp, assert_plan_valid, verify_plan,
)

from tests.plan.helpers import OffsetRef, copy_nest, decl, simple_plan


def shift(array: str = "U", s: int = 1, dim: int = 1, **kw):
    return OverlapShiftOp(array=array, shift=s, dim=dim, **kw)


def problems_of(plan):
    probs = verify_plan(plan)
    assert probs, "corrupted plan verified clean"
    return [str(p) for p in probs]


# ---------------------------------------------------------------------------
# the five corruption classes
# ---------------------------------------------------------------------------

def test_rejects_missing_overlap_shift():
    # V = U<+1,0> with no prior overlap_shift of U
    plan = simple_plan([AllocOp(names=("V",)),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    msgs = problems_of(plan)
    assert any("[coverage]" in m and "no prior overlap_shift" in m
               for m in msgs), msgs


def test_rejects_undersized_halo_shift():
    # shift depth 2 into a halo declared 1 deep
    plan = simple_plan([AllocOp(names=("V",)), shift(s=2),
                        copy_nest("V", "U", (2, 0)),
                        FreeOp(names=("V",))])
    msgs = problems_of(plan)
    assert any("[halo]" in m and "exceeds declared halo" in m
               for m in msgs), msgs


def test_rejects_undersized_halo_read():
    # the read itself escapes the declared overlap area
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        copy_nest("V", "U", (2, 0)),
                        FreeOp(names=("V",))])
    msgs = problems_of(plan)
    assert any("[halo]" in m and "reads outside the declared halo" in m
               for m in msgs), msgs


def test_rejects_use_after_free():
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",)),
                        copy_nest("U", "V", (0, 0))])
    msgs = problems_of(plan)
    assert any("[alloc]" in m and "used after free" in m
               for m in msgs), msgs


def test_rejects_out_of_bounds_rsd():
    # RSD extension 2 deep on dim 2 against a 1-deep declared halo
    bad_rsd = RSD(dims=(None, RSDim(2, 2)))
    plan = simple_plan([AllocOp(names=("V",)),
                        shift(s=1, rsd=bad_rsd),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    msgs = problems_of(plan)
    assert any("[halo]" in m and "RSD extension" in m
               for m in msgs), msgs


def test_rejects_alloc_free_mismatch():
    # free of an array never allocated, and a double allocation
    plan = simple_plan([AllocOp(names=("V",)), AllocOp(names=("V",)),
                        shift(s=1), copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",)), FreeOp(names=("V",))])
    msgs = problems_of(plan)
    assert any("[alloc]" in m and "already live" in m
               for m in msgs), msgs
    assert any("[alloc]" in m and "alloc/free mismatch" in m
               for m in msgs), msgs


# ---------------------------------------------------------------------------
# more corruption shapes the walker must see through
# ---------------------------------------------------------------------------

def test_rejects_fill_kind_mismatch():
    # circular read against an EOSHIFT-filled region
    plan = simple_plan([AllocOp(names=("V",)),
                        shift(s=1, boundary=0.0),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    msgs = problems_of(plan)
    assert any("fill kind mismatch" in m for m in msgs), msgs


def test_rejects_undeclared_array():
    plan = simple_plan([shift(array="W", s=1)])
    msgs = problems_of(plan)
    assert any("[structure]" in m and "undeclared array W" in m
               for m in msgs), msgs


def test_rejects_write_invalidating_residency():
    # writing U kills its halo residency; the later read is stale
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        copy_nest("U", "U", (0, 0)),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    msgs = problems_of(plan)
    assert any("[coverage]" in m for m in msgs), msgs


def test_assert_plan_valid_raises_with_detail():
    plan = simple_plan([AllocOp(names=("V",)),
                        copy_nest("V", "U", (1, 0))])
    with pytest.raises(PlanVerificationError) as exc:
        assert_plan_valid(plan, phase="test")
    msg = str(exc.value)
    assert "invalid plan after test" in msg
    assert "no prior overlap_shift" in msg


def test_valid_synthetic_plan_passes():
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    assert verify_plan(plan) == []


# ---------------------------------------------------------------------------
# every real kernel plan verifies clean (the verifier runs inside
# compile_kernel by default; this re-runs it explicitly and at every
# level)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3", "O4"])
def test_named_kernels_verify_clean(kernel, level):
    compiled = compile_kernel(kernel, bindings={"N": 16}, level=level)
    assert verify_plan(compiled.plan) == []


def test_verifier_rejects_corrupted_real_plan():
    # strip the first overlap shift out of a real compiled plan: the
    # verifier must notice the resulting coverage hole
    compiled = compile_kernel("purdue9", bindings={"N": 16}, level="O4")
    plan = compiled.plan
    ops = [op for op in plan.ops
           if not isinstance(op, OverlapShiftOp)] + \
          [op for op in plan.ops if isinstance(op, OverlapShiftOp)][1:]
    broken = dataclasses.replace(plan, ops=ops)
    assert any(p.check == "coverage" for p in verify_plan(broken))


def test_verifier_rejects_shrunk_halo_on_real_plan():
    compiled = compile_kernel("nine_point", bindings={"N": 16},
                              level="O4")
    plan = compiled.plan
    name, d = next((n, d) for n, d in plan.arrays.items()
                   if any(h != (0, 0) for h in d.halo))
    shrunk = dataclasses.replace(
        d, halo=tuple((0, 0) for _ in d.halo))
    broken = dataclasses.replace(
        plan, arrays={**plan.arrays, name: shrunk})
    assert any(p.check == "halo" for p in verify_plan(broken))


# ---------------------------------------------------------------------------
# buffer swaps (SwapOp): structural checks plus residency travel
# ---------------------------------------------------------------------------

def test_rejects_swap_with_itself():
    from repro.plan import SwapOp

    plan = simple_plan([SwapOp("U", "U")])
    msgs = problems_of(plan)
    assert any("[structure]" in m and "swap of an array with itself" in m
               for m in msgs), msgs


def test_rejects_swap_of_mismatched_declarations():
    from repro.plan import SwapOp

    arrays = {"U": decl("U"),
              "V": decl("V", halo=((0, 0), (0, 0)), temporary=True)}
    plan = simple_plan([AllocOp(names=("V",)), SwapOp("V", "U"),
                        FreeOp(names=("V",))], arrays=arrays)
    msgs = problems_of(plan)
    assert any("[structure]" in m and "must agree" in m
               for m in msgs), msgs


def test_swap_moves_halo_residency_with_the_buffer():
    from repro.plan import SwapOp

    # the shifted halo of U travels into the V binding across the swap,
    # so the deep read of V is covered...
    good = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        SwapOp("U", "V"),
                        copy_nest("U", "V", (1, 0)),
                        FreeOp(names=("V",))])
    assert verify_plan(good) == []
    # ...while the same deep read of U is now stale: its residency left
    # with the buffer
    bad = simple_plan([AllocOp(names=("V",)), shift(s=1),
                       SwapOp("U", "V"),
                       copy_nest("V", "U", (1, 0)),
                       FreeOp(names=("V",))])
    msgs = problems_of(bad)
    assert any("[coverage]" in m for m in msgs), msgs
