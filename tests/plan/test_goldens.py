"""Golden plan documents stay in lockstep with codegen.

The real gate runs in CI via ``benchmarks/golden_plans.py --check``;
these tests keep the tool itself honest (mismatch detection, the
schema-bump escape hatch) and verify the checked-in goldens match the
compiler in this tree.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from benchmarks import golden_plans  # noqa: E402

from repro.kernels import KERNELS  # noqa: E402
from repro.plan import PLAN_SCHEMA_VERSION  # noqa: E402


def test_checked_in_goldens_match_compiler():
    assert golden_plans.check() == 0


def test_manifest_covers_every_named_kernel():
    manifest = json.loads(golden_plans.MANIFEST.read_text())
    expected = sorted(set(KERNELS) | {
        f"{name}+passes" for name in golden_plans.LOOP_KERNELS})
    assert manifest["kernels"] == expected
    assert manifest["schema"] == PLAN_SCHEMA_VERSION


def test_check_fails_on_drifted_golden(tmp_path, monkeypatch):
    # copy the goldens, corrupt one, point the tool at the copy
    import shutil
    fake = tmp_path / "goldens"
    shutil.copytree(golden_plans.GOLDEN_DIR, fake)
    victim = fake / "purdue9.O4.json"
    doc = json.loads(victim.read_text())
    doc["params"]["N"] = 9999
    victim.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    monkeypatch.setattr(golden_plans, "GOLDEN_DIR", fake)
    monkeypatch.setattr(golden_plans, "MANIFEST",
                        fake / "MANIFEST.json")
    assert golden_plans.check() == 1


def test_check_demands_regeneration_after_schema_bump(tmp_path,
                                                      monkeypatch,
                                                      capsys):
    import shutil
    fake = tmp_path / "goldens"
    shutil.copytree(golden_plans.GOLDEN_DIR, fake)
    manifest_path = fake / "MANIFEST.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["schema"] = PLAN_SCHEMA_VERSION - 1  # stale by one bump
    manifest_path.write_text(json.dumps(manifest) + "\n")
    monkeypatch.setattr(golden_plans, "GOLDEN_DIR", fake)
    monkeypatch.setattr(golden_plans, "MANIFEST", manifest_path)
    assert golden_plans.check() == 1
    assert "regenerate with" in capsys.readouterr().err
