"""Plan passes: scheduling, shift coalescing, dead-alloc elimination.

The safety contract under test: with ``plan_passes=True``, no named
kernel at any optimization level sends more messages or bytes than the
unoptimized plan (checked against the executed cost accounting, not
static op counts), results stay bitwise identical, and the passes remove
redundancy the AST-level pipeline cannot see.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlanVerificationError
from repro.kernels import KERNELS, compile_kernel, run_kernel
from repro.machine import Machine
from repro.plan import (
    AllocOp, CoalesceShiftsPass, CondOp, DeadAllocElimPass, FreeOp,
    HoistInvariantShiftsPass, OverlappedOp, OverlapShiftOp,
    PingPongElimPass, PlanPass, PlanPassManager, SchedulePass, SeqLoopOp,
    SwapOp, WhileOp, verify_plan,
)

from tests.plan.helpers import (
    OffsetRef, copy_nest, decl, nest, scalar_true, simple_plan,
)


def shift(array: str = "U", s: int = 1, dim: int = 1, **kw):
    return OverlapShiftOp(array=array, shift=s, dim=dim, **kw)


# ---------------------------------------------------------------------------
# coalesce-shifts
# ---------------------------------------------------------------------------

def test_coalesces_duplicate_shift():
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    new, stats = CoalesceShiftsPass().run(plan)
    assert stats["coalesced_shifts"] == 1
    assert new.count_ops(OverlapShiftOp) == 1
    assert verify_plan(new) == []


def test_deeper_shift_subsumes_shallower():
    arrays = {"U": decl("U", halo=((2, 2), (2, 2))),
              "V": decl("V", halo=((2, 2), (2, 2)), temporary=True)}
    plan = simple_plan([AllocOp(names=("V",)), shift(s=2), shift(s=1),
                        copy_nest("V", "U", (2, 0)),
                        FreeOp(names=("V",))], arrays=arrays)
    new, stats = CoalesceShiftsPass().run(plan)
    assert stats["coalesced_shifts"] == 1
    assert verify_plan(new) == []


def test_never_coalesces_across_a_write():
    # the intervening write to U invalidates its halo; the second shift
    # re-fills it and must survive
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        copy_nest("U", "U", (0, 0)), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    new, stats = CoalesceShiftsPass().run(plan)
    assert stats["coalesced_shifts"] == 0
    assert new.count_ops(OverlapShiftOp) == 2


def test_never_coalesces_opposite_directions_or_fills():
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1), shift(s=-1),
                        shift(s=1, dim=2, boundary=0.0),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    new, stats = CoalesceShiftsPass().run(plan)
    assert stats["coalesced_shifts"] == 0


# ---------------------------------------------------------------------------
# schedule
# ---------------------------------------------------------------------------

def test_schedule_hoists_comm_and_sinks_free():
    plan = simple_plan([
        AllocOp(names=("V",)),
        copy_nest("U", "U", (0, 0)),   # independent compute on U... but
                                       # writes U, so shifts of U depend
        shift(array="V", s=1),         # V-shift can hoist above U work
        copy_nest("V", "V", (1, 0)),
        FreeOp(names=("V",)),
    ])
    new, stats = SchedulePass().run(plan)
    kinds = [type(op).__name__ for op in new.ops]
    # the V overlap shift moved ahead of the U loop nest
    assert kinds.index("OverlapShiftOp") < kinds.index("LoopNestOp")
    assert verify_plan(new) == []


def test_schedule_respects_dependences():
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    new, _ = SchedulePass().run(plan)
    kinds = [type(op).__name__ for op in new.ops]
    # the shift of U is independent of V's alloc and may hoist above
    # it, but the nest needs both and the free must stay last
    assert kinds.index("AllocOp") < kinds.index("LoopNestOp")
    assert kinds.index("OverlapShiftOp") < kinds.index("LoopNestOp")
    assert kinds[-1] == "FreeOp"


def test_schedule_is_deterministic():
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        shift(s=1, dim=2),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    a, _ = SchedulePass().run(plan)
    b, _ = SchedulePass().run(plan)
    assert [str(type(o)) for o in a.ops] == \
        [str(type(o)) for o in b.ops]


# ---------------------------------------------------------------------------
# dead-alloc
# ---------------------------------------------------------------------------

def test_dead_alloc_removes_unused_temporary():
    arrays = {"U": decl("U"), "V": decl("V", temporary=True),
              "W": decl("W", temporary=True)}
    plan = simple_plan([AllocOp(names=("V", "W")), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V", "W"))], arrays=arrays)
    new, stats = DeadAllocElimPass().run(plan)
    assert stats["dead_allocs"] == 1
    assert stats["dead_decls"] == 1
    assert "W" not in new.arrays
    assert all("W" not in getattr(op, "names", ())
               for op in new.walk_ops())
    assert verify_plan(new) == []


def test_dead_alloc_keeps_entry_arrays():
    plan = simple_plan([AllocOp(names=("V",)), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("V",))])
    new, stats = DeadAllocElimPass().run(plan)
    assert "U" in new.arrays and "V" in new.arrays
    assert stats["dead_allocs"] == 0


# ---------------------------------------------------------------------------
# manager
# ---------------------------------------------------------------------------

def test_manager_verifies_after_each_pass():
    class Breaker(PlanPass):
        name = "breaker"

        def run(self, plan):
            import dataclasses
            ops = [op for op in plan.ops
                   if not isinstance(op, OverlapShiftOp)]
            return dataclasses.replace(plan, ops=ops), {}

    compiled = compile_kernel("purdue9", bindings={"N": 16})
    with pytest.raises(PlanVerificationError, match="breaker"):
        PlanPassManager(passes=[Breaker()]).run(compiled.plan)


def test_manager_reports_stats_into_compile_report():
    compiled = compile_kernel("purdue9", bindings={"N": 16},
                              plan_passes=True)
    stats = compiled.report.pass_stats["plan-passes"]
    assert set(stats) == {"schedule", "hoist-invariant-shifts",
                          "pingpong-elim", "coalesce-shifts",
                          "dead-alloc"}


# ---------------------------------------------------------------------------
# the end-to-end safety contract, profiler-verified
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("level", ["O0", "O2", "O4"])
def test_passes_never_increase_messages_or_bytes(kernel, level):
    n = {"N": 12}
    base = run_kernel(kernel, bindings=n, level=level)
    opt = run_kernel(kernel, bindings=n, level=level, plan_passes=True)
    b, o = base.report.summary(), opt.report.summary()
    assert o["messages"] <= b["messages"], (kernel, level, b, o)
    assert o["message_bytes"] <= b["message_bytes"], (kernel, level)
    # a dead scratch consumed by a ping-pong swap holds unspecified
    # values afterwards; everything else must stay bitwise identical
    plan = compile_kernel(kernel, bindings=n, level=level,
                          plan_passes=True).plan
    swapped = {name for op in plan.walk_ops() if isinstance(op, SwapOp)
               for name in (op.a, op.b)} - set(plan.outputs or ())
    for name in set(base.arrays) - swapped:
        np.testing.assert_array_equal(base.arrays[name],
                                      opt.arrays[name])


@pytest.mark.parametrize("backend", ["perpe", "vectorized"])
def test_passes_preserve_results_on_both_backends(backend):
    base = run_kernel("purdue9", bindings={"N": 16}, backend=backend)
    opt = run_kernel("purdue9", bindings={"N": 16}, backend=backend,
                     plan_passes=True)
    for name in base.arrays:
        np.testing.assert_array_equal(base.arrays[name],
                                      opt.arrays[name])


def test_coalescing_removes_redundancy_comm_union_cannot_see():
    """At O2 the pipeline has fusion and context partitioning but no
    communication unioning (an O3 feature), so the AST never loses its
    redundant per-statement shifts — the plan is the only level left
    that can prove and remove them.  The nine-point stencil re-shifts
    SRC six times at O2; plan-level coalescing removes every one
    without touching results, and the executed message count drops."""
    base = compile_kernel("nine_point", bindings={"N": 16}, level="O2")
    opt = compile_kernel("nine_point", bindings={"N": 16}, level="O2",
                         plan_passes=True)
    stats = opt.report.pass_stats["plan-passes"]["coalesce-shifts"]
    assert stats["coalesced_shifts"] >= 1
    assert opt.plan.count_ops(OverlapShiftOp) < \
        base.plan.count_ops(OverlapShiftOp)
    # and the optimized plan actually communicates less
    rng = np.random.default_rng(0)
    inputs = {"SRC": rng.standard_normal((16, 16)).astype(np.float32)}
    rb = base.run(Machine(grid=(2, 2)), inputs=inputs)
    ro = opt.run(Machine(grid=(2, 2)), inputs=inputs)
    assert ro.report.summary()["messages"] < \
        rb.report.summary()["messages"]
    for name in rb.arrays:
        np.testing.assert_array_equal(rb.arrays[name], ro.arrays[name])


def test_dead_alloc_removes_what_comm_union_never_could():
    """Dead allocations only exist at the plan level (temporaries are
    named during codegen), so no AST pass — comm_union included — can
    even represent this redundancy.  A plan with an orphaned temporary
    pair loses it, and the verifier blesses the result."""
    arrays = {"U": decl("U"), "V": decl("V", temporary=True),
              "DEAD": decl("DEAD", temporary=True)}
    plan = simple_plan([AllocOp(names=("V",)),
                        AllocOp(names=("DEAD",)), shift(s=1),
                        copy_nest("V", "U", (1, 0)),
                        FreeOp(names=("DEAD",)),
                        FreeOp(names=("V",))], arrays=arrays)
    new, stats = PlanPassManager().run(plan)
    assert stats["dead-alloc"]["dead_allocs"] == 1
    assert "DEAD" not in new.arrays


# ---------------------------------------------------------------------------
# loop-aware coalescing (regressions: the flat-block coalescer missed
# all of these — subsumption state never crossed a region boundary)
# ---------------------------------------------------------------------------

def _loop(body, var="K", lo=1, hi=3):
    from repro.ir.linexpr import LinExpr
    return SeqLoopOp(var=var, lo=LinExpr.of(lo), hi=LinExpr.of(hi),
                     body=body)


def test_coalesce_threads_preheader_state_into_loop_body():
    """A body shift of an array the loop never writes re-sends the
    halo the preheader shift already filled — per iteration."""
    plan = simple_plan([
        AllocOp(names=("V",)), shift(s=1),
        _loop([shift(s=1), copy_nest("V", "U", (1, 0))]),
        FreeOp(names=("V",)),
    ])
    new, stats = CoalesceShiftsPass().run(plan)
    assert stats["coalesced_shifts"] == 1
    assert new.count_ops(OverlapShiftOp) == 1
    assert verify_plan(new) == []


def test_coalesce_keeps_body_shift_when_loop_writes_array():
    plan = simple_plan([
        AllocOp(names=("V",)), shift(s=1),
        _loop([shift(s=1), copy_nest("V", "U", (1, 0)),
               copy_nest("U", "V", (0, 0))]),
        shift(s=1),
        copy_nest("V", "U", (1, 0)),
        FreeOp(names=("V",)),
    ])
    new, stats = CoalesceShiftsPass().run(plan)
    # the body rewrites U's owned cells: neither the body shift nor the
    # post-loop shift may be removed
    assert stats["coalesced_shifts"] == 0
    assert new.count_ops(OverlapShiftOp) == 3


def test_coalesce_across_overlapped_comm_blocks():
    arrays = {"U": decl("U"), "V": decl("V", temporary=True),
              "W": decl("W", temporary=True)}
    plan = simple_plan([
        AllocOp(names=("V", "W")),
        OverlappedOp(comm_ops=[shift(s=1)],
                     nest=copy_nest("V", "U", (1, 0))),
        OverlappedOp(comm_ops=[shift(s=1)],
                     nest=copy_nest("W", "U", (1, 0))),
        FreeOp(names=("V", "W")),
    ], arrays=arrays)
    new, stats = CoalesceShiftsPass().run(plan)
    # neither nest writes U, so the second comm block's shift is proven
    # redundant by the first block's
    assert stats["coalesced_shifts"] == 1
    assert verify_plan(new) == []


def test_coalesce_cond_arms_inherit_but_do_not_leak():
    plan = simple_plan([
        AllocOp(names=("V",)), shift(s=1),
        copy_nest("V", "U", (1, 0)),
        CondOp(cond=scalar_true(), then_ops=[shift(s=1)], else_ops=[]),
        shift(s=1),
        copy_nest("V", "U", (1, 0)),
        FreeOp(names=("V",)),
    ])
    new, stats = CoalesceShiftsPass().run(plan)
    # the arm's shift is subsumed by the preheader's; the shift after
    # the conditional must survive (the arm may or may not have run)
    assert stats["coalesced_shifts"] == 1
    assert new.count_ops(OverlapShiftOp) == 2


# ---------------------------------------------------------------------------
# hoist-invariant-shifts
# ---------------------------------------------------------------------------

def test_hoist_moves_invariant_shifts_to_preheader():
    plan = simple_plan([
        AllocOp(names=("V",)),
        _loop([shift(s=1), copy_nest("V", "U", (1, 0))]),
        FreeOp(names=("V",)),
    ])
    new, stats = HoistInvariantShiftsPass().run(plan)
    assert stats["hoisted_shifts"] == 1
    loop = next(op for op in new.ops if isinstance(op, SeqLoopOp))
    assert not any(isinstance(op, OverlapShiftOp) for op in loop.body)
    kinds = [type(op).__name__ for op in new.ops]
    assert kinds.index("OverlapShiftOp") < kinds.index("SeqLoopOp")
    assert verify_plan(new) == []


def test_hoist_skips_arrays_written_in_the_body():
    plan = simple_plan([
        AllocOp(names=("V",)),
        _loop([shift(s=1), copy_nest("V", "U", (1, 0)),
               copy_nest("U", "V", (0, 0))]),
        FreeOp(names=("V",)),
    ])
    new, stats = HoistInvariantShiftsPass().run(plan)
    assert stats["hoisted_shifts"] == 0


def test_hoist_skips_zero_and_unknown_trip_counts():
    from repro.ir.linexpr import LinExpr
    body = [shift(s=1), copy_nest("V", "U", (1, 0))]
    zero = simple_plan([AllocOp(names=("V",)),
                        _loop(list(body), lo=1, hi=0),
                        FreeOp(names=("V",))])
    _, stats = HoistInvariantShiftsPass().run(zero)
    assert stats["hoisted_shifts"] == 0
    unknown = simple_plan([
        AllocOp(names=("V",)),
        SeqLoopOp(var="K", lo=LinExpr(1), hi=LinExpr.of("M"),
                  body=list(body)),
        FreeOp(names=("V",))])
    _, stats = HoistInvariantShiftsPass().run(unknown)
    assert stats["hoisted_shifts"] == 0


def test_hoist_skips_while_bodies_and_conditional_arms():
    whi = simple_plan([
        AllocOp(names=("V",)),
        WhileOp(cond=scalar_true(),
                body=[shift(s=1), copy_nest("V", "U", (1, 0))]),
        FreeOp(names=("V",)),
    ])
    _, stats = HoistInvariantShiftsPass().run(whi)
    assert stats["hoisted_shifts"] == 0
    cond = simple_plan([
        AllocOp(names=("V",)),
        _loop([CondOp(cond=scalar_true(), then_ops=[shift(s=1)],
                      else_ops=[]),
               copy_nest("V", "U", (0, 0))]),
        FreeOp(names=("V",)),
    ])
    new, stats = HoistInvariantShiftsPass().run(cond)
    assert stats["hoisted_shifts"] == 0


def test_hoist_degrades_overlapped_op_when_comm_empties():
    plan = simple_plan([
        AllocOp(names=("V",)),
        _loop([OverlappedOp(comm_ops=[shift(s=1)],
                            nest=copy_nest("V", "U", (1, 0)))]),
        FreeOp(names=("V",)),
    ])
    new, stats = HoistInvariantShiftsPass().run(plan)
    assert stats["hoisted_shifts"] == 1
    loop = next(op for op in new.ops if isinstance(op, SeqLoopOp))
    assert not any(isinstance(op, OverlappedOp) for op in loop.body)
    assert verify_plan(new) == []


def test_hoist_cascades_out_of_nested_loops_in_one_run():
    plan = simple_plan([
        AllocOp(names=("V",)),
        _loop([_loop([shift(s=1), copy_nest("V", "U", (1, 0))],
                     var="J")]),
        FreeOp(names=("V",)),
    ])
    new, stats = HoistInvariantShiftsPass().run(plan)
    assert stats["hoisted_shifts"] == 2
    assert isinstance(new.ops[1], OverlapShiftOp)
    assert verify_plan(new) == []


# ---------------------------------------------------------------------------
# pingpong-elim
# ---------------------------------------------------------------------------

def _pingpong_plan(outputs=("U",), arrays=None, copy=None,
                   producer=None):
    """DO-loop double-buffer idiom: produce V from U, copy V back."""
    from dataclasses import replace

    body = [shift(s=1),
            producer if producer is not None
            else nest("V", OffsetRef("U", (1, 0))),
            copy if copy is not None else copy_nest("U", "V", (0, 0))]
    plan = simple_plan([AllocOp(names=("V",)), _loop(body),
                        FreeOp(names=("V",))], arrays=arrays)
    return replace(plan, outputs=outputs)


def test_pingpong_rewrites_double_buffer_loop():
    new, stats = PingPongElimPass().run(_pingpong_plan())
    assert stats["pingpong_swaps"] == 1
    loop = next(op for op in new.ops if isinstance(op, SeqLoopOp))
    swaps = [op for op in loop.body if isinstance(op, SwapOp)]
    assert [(s.a, s.b) for s in swaps] == [("V", "U")]
    assert not any(isinstance(op, SwapOp) is False and
                   op.__class__.__name__ == "LoopNestOp" and
                   op.label == "pingpong-seed" for op in loop.body)
    seeds = [op for op in new.ops
             if getattr(op, "label", "") == "pingpong-seed"]
    assert len(seeds) == 1, "seed copy must land in the preheader"
    assert verify_plan(new) == []


def test_pingpong_requires_declared_outputs():
    new, stats = PingPongElimPass().run(_pingpong_plan(outputs=None))
    assert stats["pingpong_swaps"] == 0


def test_pingpong_never_swaps_an_observable_scratch():
    new, stats = PingPongElimPass().run(
        _pingpong_plan(outputs=("U", "V")))
    assert stats["pingpong_swaps"] == 0


def test_pingpong_requires_full_box_copy():
    from repro.ir.linexpr import LinExpr
    from repro.machine.cost_model import LoopStats
    from repro.plan import LoopNestOp, NestStmt

    interior = tuple((LinExpr(2), LinExpr(7)) for _ in range(2))
    partial = LoopNestOp(
        statements=[NestStmt(lhs="U", rhs=OffsetRef("V", (0, 0)))],
        space=interior, stats=LoopStats(points=36))
    new, stats = PingPongElimPass().run(_pingpong_plan(copy=partial))
    assert stats["pingpong_swaps"] == 0


def test_pingpong_requires_full_box_producer():
    from repro.ir.linexpr import LinExpr
    from repro.machine.cost_model import LoopStats
    from repro.plan import LoopNestOp, NestStmt

    interior = tuple((LinExpr(2), LinExpr(7)) for _ in range(2))
    partial = LoopNestOp(
        statements=[NestStmt(lhs="V", rhs=OffsetRef("U", (1, 0)))],
        space=interior, stats=LoopStats(points=36))
    new, stats = PingPongElimPass().run(
        _pingpong_plan(producer=partial))
    assert stats["pingpong_swaps"] == 0


def test_pingpong_merges_halo_depths_of_the_swapped_pair():
    arrays = {"U": decl("U"),
              "V": decl("V", halo=((0, 0), (0, 0)), temporary=True)}
    new, stats = PingPongElimPass().run(_pingpong_plan(arrays=arrays))
    assert stats["pingpong_swaps"] == 1
    assert new.arrays["U"].halo == ((1, 1), (1, 1))
    assert new.arrays["V"].halo == ((1, 1), (1, 1))
    assert verify_plan(new) == []
