"""Builders for small synthetic plans used across the plan-IR tests."""

from __future__ import annotations

import numpy as np

from repro.ir.linexpr import LinExpr
from repro.ir.nodes import Compare, Const, OffsetRef, ScalarRef
from repro.ir.types import Distribution, DistKind
from repro.machine.cost_model import LoopStats
from repro.plan import ArrayDecl, LoopNestOp, NestStmt, Plan

BLOCK2 = Distribution((DistKind.BLOCK, DistKind.BLOCK))


def decl(name: str, n: int = 8,
         halo: tuple[tuple[int, int], ...] = ((1, 1), (1, 1)),
         temporary: bool = False) -> ArrayDecl:
    return ArrayDecl(name=name, shape=(n, n), distribution=BLOCK2,
                     dtype=np.dtype(np.float32), halo=halo,
                     is_temporary=temporary)


def box(n: int = 8) -> tuple[tuple[LinExpr, LinExpr], ...]:
    one, top = LinExpr(1), LinExpr(n)
    return ((one, top), (one, top))


def nest(lhs: str, rhs, n: int = 8, label: str = "") -> LoopNestOp:
    return LoopNestOp(statements=[NestStmt(lhs=lhs, rhs=rhs)],
                      space=box(n), stats=LoopStats(points=n * n),
                      label=label)


def copy_nest(dst: str, src: str,
              offsets: tuple[int, ...] = (0, 0), n: int = 8) -> LoopNestOp:
    return nest(dst, OffsetRef(src, offsets), n=n)


def simple_plan(ops, arrays=None, n: int = 8,
                entry: tuple[str, ...] = ("U",),
                scalars: tuple[str, ...] = ()) -> Plan:
    """A plan over U (entry) and V with 1-deep halos everywhere."""
    if arrays is None:
        arrays = {"U": decl("U", n), "V": decl("V", n, temporary=True)}
    return Plan(arrays=arrays, params={"N": n}, scalar_names=scalars,
                ops=ops, entry_arrays=entry)


def scalar_true() -> Compare:
    return Compare("<", Const(0.0), Const(1.0))


__all__ = ["BLOCK2", "Compare", "Const", "OffsetRef", "ScalarRef",
           "box", "copy_nest", "decl", "nest", "scalar_true",
           "simple_plan"]
