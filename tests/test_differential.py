"""Differential fuzzing: random subset programs, all levels, all grids.

The ultimate semantics-preservation test — any divergence between an
optimization level and the serial reference fails with the offending
program attached.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import (
    GeneratorConfig, differential_check, random_inputs, random_program,
)


class TestGenerator:
    def test_deterministic(self):
        assert random_program(7).source == random_program(7).source

    def test_parses(self):
        from repro.frontend import parse_program
        for seed in range(20):
            prog = random_program(seed)
            parse_program(prog.source, bindings=prog.bindings)

    def test_inputs_cover_arrays(self):
        prog = random_program(3)
        inputs = random_inputs(3, prog)
        assert set(inputs) == set(prog.arrays)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_differential_default(seed):
    prog = random_program(seed)
    differential_check(prog, random_inputs(seed, prog),
                       levels=("O0", "O2", "O4"))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_differential_all_levels_multiple_grids(seed):
    cfg = GeneratorConfig(n=12, n_statements=4)
    prog = random_program(seed, cfg)
    differential_check(prog, random_inputs(seed, prog, cfg),
                       grids=((1, 1), (2, 2), (4, 2)))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_differential_3d(seed):
    cfg = GeneratorConfig(ndim=3, n=8, n_statements=3,
                          allow_where=False)
    prog = random_program(seed, cfg)
    differential_check(prog, random_inputs(seed, prog, cfg),
                       levels=("O0", "O4"))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_differential_wide_offsets(seed):
    cfg = GeneratorConfig(n=16, max_offset=3, n_statements=5)
    prog = random_program(seed, cfg)
    differential_check(prog, random_inputs(seed, prog, cfg),
                       levels=("O0", "O3"))


def test_known_hard_seeds():
    """Seeds that historically exercised corner paths stay covered."""
    for seed in (0, 1, 2, 42, 1234, 9999):
        prog = random_program(seed)
        differential_check(prog, random_inputs(seed, prog))


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_differential_extension_options(seed):
    """The extension optimizations must also preserve semantics on
    random programs (cse, comm/comp overlap, invariant hoisting)."""
    import numpy as np
    from repro.compiler import compile_hpf
    from repro.frontend import parse_program
    from repro.machine import Machine
    from repro.runtime.reference import evaluate

    prog = random_program(seed)
    inputs = random_inputs(seed, prog)
    parsed = parse_program(prog.source, bindings=prog.bindings)
    ref = evaluate(parsed, inputs=inputs)
    for opts in ({"cse": True}, {"overlap_comm": True},
                 {"hoist_comm": True},
                 {"cse": True, "overlap_comm": True, "hoist_comm": True}):
        compiled = compile_hpf(prog.source, bindings=prog.bindings,
                               level="O4", outputs=set(prog.arrays),
                               **opts)
        res = compiled.run(Machine(grid=(2, 2), keep_message_log=False),
                           inputs=inputs)
        for name in prog.arrays:
            np.testing.assert_allclose(
                res.arrays[name], ref[name], rtol=1e-6, atol=1e-12,
                err_msg=f"{opts} on\n{prog.source}")
