"""Golden generated-kernel sources.

The exact text the lowerer emits for two representative configurations
is checked in; any codegen change shows up as a reviewable diff here
(and must bump ``CODEGEN_VERSION`` so on-disk kernel caches invalidate).
Regenerate with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/codegen/test_golden.py
"""

import os
from pathlib import Path

import pytest

from repro.codegen import CodegenOptions, lower_plan
from repro.compiler import compile_hpf
from repro.kernels import KERNELS

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: (golden file, kernel, level, options) — one plain config and one with
#: every §3.4 transform (tiling + unroll-and-jam) switched on
CASES = [
    ("five_point.O2.plain.py", "five_point", "O2", CodegenOptions()),
    ("nine_point.O4.tile8.unroll2.py", "nine_point", "O4",
     CodegenOptions(tile=8, unroll=2)),
]


def _generate(kernel: str, level: str, options: CodegenOptions) -> str:
    spec = KERNELS[kernel]
    plan = compile_hpf(spec.source, bindings={"N": 16}, level=level,
                       outputs=set(spec.outputs)).plan
    return lower_plan(plan, options).source


@pytest.mark.parametrize("fname,kernel,level,options", CASES,
                         ids=[c[0] for c in CASES])
def test_golden_source(fname, kernel, level, options):
    generated = _generate(kernel, level, options)
    path = GOLDEN_DIR / fname
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(generated)
        pytest.skip(f"regenerated {fname}")
    assert path.exists(), (
        f"golden {fname} missing; regenerate with "
        f"REPRO_UPDATE_GOLDENS=1")
    assert generated == path.read_text(), (
        f"generated kernel source drifted from {fname}; if the change "
        f"is intended, bump CODEGEN_VERSION and regenerate with "
        f"REPRO_UPDATE_GOLDENS=1")
