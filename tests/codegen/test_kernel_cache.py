"""Kernel caches: key sensitivity, the in-process module LRU, and the
on-disk source store (atomic writes, cross-object persistence)."""

import threading

import pytest

from repro.codegen import (
    CodegenOptions, KernelDiskCache, kernel_key, lower_plan, materialize,
)
from repro.codegen import cache as kcache
from repro.compiler import compile_hpf
from repro.kernels import KERNELS
from repro.machine import Machine
from repro.machine.cost_model import CostModel


def _plan(name="five_point", level="O2", n=12):
    spec = KERNELS[name]
    return compile_hpf(spec.source, bindings={"N": n}, level=level,
                       outputs=set(spec.outputs)).plan


@pytest.fixture(autouse=True)
def _fresh_module_cache():
    kcache.clear_modules()
    yield
    kcache.clear_modules()


class TestKernelKey:
    def test_deterministic(self):
        plan, machine = _plan(), Machine(grid=(2, 2))
        opts = CodegenOptions(tile=8, unroll=2)
        assert kernel_key(plan, machine, opts) == \
            kernel_key(plan, machine, opts)

    def test_factors_change_the_key(self):
        plan, machine = _plan(), Machine(grid=(2, 2))
        keys = {kernel_key(plan, machine, CodegenOptions(tile=t,
                                                         unroll=u))
                for t in (0, 8) for u in (0, 2)}
        assert len(keys) == 4

    def test_plan_changes_the_key(self):
        machine = Machine(grid=(2, 2))
        opts = CodegenOptions()
        assert kernel_key(_plan(n=12), machine, opts) != \
            kernel_key(_plan(n=16), machine, opts)

    def test_machine_changes_the_key(self):
        plan, opts = _plan(), CodegenOptions()
        a = Machine(grid=(2, 2))
        b = Machine(grid=(4, 1))
        c = Machine(grid=(2, 2), cost_model=CostModel(flop=1e-6))
        keys = {kernel_key(plan, m, opts) for m in (a, b, c)}
        assert len(keys) == 3


class TestModuleLRU:
    def _module(self):
        lp = lower_plan(_plan(), CodegenOptions())
        return materialize(lp.source, "python")

    def test_hit_and_miss_accounting(self):
        module = self._module()
        h0, m0 = kcache.MEMORY_STATS.hits, kcache.MEMORY_STATS.misses
        assert kcache.get_module("k1", "python") is None
        kcache.put_module("k1", "python", module)
        assert kcache.get_module("k1", "python") is module
        assert kcache.MEMORY_STATS.hits == h0 + 1
        assert kcache.MEMORY_STATS.misses == m0 + 1

    def test_mode_is_part_of_the_key(self):
        module = self._module()
        kcache.put_module("k1", "python", module)
        assert kcache.get_module("k1", "numba") is None

    def test_lru_evicts_oldest(self, monkeypatch):
        monkeypatch.setattr(kcache, "_MAX_MODULES", 2)
        module = self._module()
        for key in ("a", "b", "c"):
            kcache.put_module(key, "python", module)
        assert kcache.get_module("a", "python") is None
        assert kcache.get_module("c", "python") is module

    def test_concurrent_access_is_safe(self):
        module = self._module()
        errors = []

        def worker(tag):
            try:
                for i in range(50):
                    kcache.put_module(f"{tag}-{i}", "python", module)
                    kcache.get_module(f"{tag}-{i}", "python")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestDiskCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        cache.put_source("deadbeef", "# kernel source\n")
        assert cache.get_source("deadbeef") == "# kernel source\n"
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_miss_counts(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        assert cache.get_source("nope") is None
        assert cache.stats.misses == 1

    def test_survives_cache_object(self, tmp_path):
        KernelDiskCache(tmp_path).put_source("k", "src\n")
        assert KernelDiskCache(tmp_path).get_source("k") == "src\n"

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        for i in range(5):
            cache.put_source(f"k{i}", f"# {i}\n")
        assert not list(tmp_path.glob("*.tmp"))
        assert len(cache) == 5

    def test_materialized_from_disk_matches(self, tmp_path):
        plan = _plan()
        lp = lower_plan(plan, CodegenOptions(tile=4))
        cache = KernelDiskCache(tmp_path)
        key = kernel_key(plan, Machine(grid=(2, 2)),
                         CodegenOptions(tile=4))
        cache.put_source(key, lp.source)
        revived = materialize(cache.get_source(key), "python")
        assert tuple(e.nest for e in revived.entries) == lp.nests
