"""End-to-end service tests over real HTTP.

The server runs on a background event loop; clients are plain
``http.client`` connections, so the stdlib HTTP parser in
:mod:`repro.service.app` is exercised against a real peer.  The two
load-bearing guarantees under test:

* **One cold compilation per burst** — 32 concurrent identical
  ``/compile`` requests produce exactly one plan-cache miss (the
  cache's own counters prove it) and 32 successful responses whose
  coalescing roles sum to 32.
* **Bitwise fidelity** — a ``/run`` response's per-array sha256
  digests equal those of the same run made directly through
  :func:`repro.kernels.run_kernel`, for every backend.
"""

import asyncio
import hashlib
import http.client
import json
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.kernels import run_kernel
from repro.obs.ledger import RunLedger
from repro.service import ReproService, WorkerPool
from repro.service.handlers import COMPILE_FINGERPRINT

# the CI metrics-smoke grammar, verbatim
PROM_LINE = re.compile(
    r'^(?:'
    r'# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* \S.*'
    r'|# repro-nondeterministic [a-zA-Z_:][a-zA-Z0-9_:]*'
    r'|[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' (?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf)|NaN)'
    r')$')


class ServiceHarness:
    """A live server on a daemon event-loop thread."""

    def __init__(self, tmp_path, **state_kwargs):
        state_kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        state_kwargs.setdefault("ledger_path",
                                str(tmp_path / "ledger.jsonl"))
        self.tmp_path = tmp_path
        self.service = ReproService(**state_kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        self._call(self.service.start(port=0))
        self.port = self.service.port

    def _call(self, coro, timeout=60):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    def close(self):
        self._call(self.service.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()

    # -- client ------------------------------------------------------------
    def request(self, method, path, doc=None, timeout=120):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            body = None if doc is None \
                else json.dumps(doc).encode()
            conn.request(method, path, body)
            response = conn.getresponse()
            payload = response.read()
            return response.status, dict(response.getheaders()), payload
        finally:
            conn.close()

    def json(self, method, path, doc=None, expect=200):
        status, headers, payload = self.request(method, path, doc)
        parsed = json.loads(payload)
        assert status == expect, parsed
        return parsed


@pytest.fixture
def harness(tmp_path):
    h = ServiceHarness(tmp_path)
    yield h
    h.close()


FIVE_O2 = {"kernel": "five_point", "bindings": {"N": 12},
           "level": "O2"}


class TestCompile:
    def test_compile_reports_and_schema(self, harness):
        doc = harness.json("POST", "/compile", FIVE_O2)
        assert doc["schema"] == {"type": "service", "version": 1}
        assert doc["kind"] == "compile"
        assert doc["kernel"] == "five_point"
        assert doc["report"]["level"] == "O2"
        assert doc["report"]["overlap_shifts"] == 4
        assert doc["plan_url"] == f"/plan/{doc['key']}"

    def test_plan_document_served_byte_for_byte(self, harness):
        from repro.kernels import compile_kernel
        from repro.plan import plan_to_json

        doc = harness.json("POST", "/compile", FIVE_O2)
        status, headers, payload = harness.request(
            "GET", doc["plan_url"])
        assert status == 200
        expected = plan_to_json(compile_kernel(
            "five_point", bindings={"N": 12}, level="O2"). plan)
        assert payload == expected.encode()
        # the content-sha alias resolves to the same bytes
        status, _, by_sha = harness.request(
            "GET", f"/plan/{doc['plan_key']}")
        assert status == 200 and by_sha == payload
        assert doc["plan_key"] == hashlib.sha256(payload).hexdigest()

    def test_include_plan_embeds_versioned_document(self, harness):
        doc = harness.json("POST", "/compile",
                           {**FIVE_O2, "include_plan": True})
        from repro.plan.serialize import PLAN_SCHEMA_VERSION
        assert doc["plan"]["schema"] == PLAN_SCHEMA_VERSION

    def test_unknown_plan_key_is_404(self, harness):
        doc = harness.json("GET", "/plan/notakey", expect=404)
        assert doc["kind"] == "error"

    def test_bad_job_is_400_with_diagnostic(self, harness):
        doc = harness.json("POST", "/compile",
                           {"kernel": "nope"}, expect=400)
        assert "nope" in doc["error"]

    def test_compile_error_is_400_not_500(self, harness):
        doc = harness.json("POST", "/compile",
                           {"source": "this is not hpf"}, expect=400)
        assert doc["kind"] == "error"

    def test_malformed_json_is_400(self, harness):
        status, _, payload = harness.request("POST", "/compile")
        conn = http.client.HTTPConnection("127.0.0.1", harness.port)
        conn.request("POST", "/compile", b"{not json")
        response = conn.getresponse()
        assert response.status == 400
        assert b"JSON" in response.read()
        conn.close()


class TestCoalescing:
    def test_burst_of_32_costs_one_cold_compilation(self, harness):
        """The acceptance gate: 32 concurrent identical /compile
        requests -> exactly one compilation, proven by the plan
        cache's own counters, with all 32 responses sharing one key
        and their coalescing roles summing to 32."""
        job = {"kernel": "purdue9", "bindings": {"N": 48},
               "level": "O4"}
        n = 32
        with ThreadPoolExecutor(max_workers=n) as pool:
            docs = list(pool.map(
                lambda _: harness.json("POST", "/compile", job),
                range(n)))
        assert len({d["key"] for d in docs}) == 1
        assert len({d["plan_key"] for d in docs}) == 1

        health = harness.json("GET", "/healthz")
        memory = health["caches"]["plan-memory"]
        # one cold compilation for the whole burst: the single miss
        # (and matching disk miss) belongs to the leader; every other
        # request either coalesced onto its future or hit the cache
        assert memory["misses"] == 1.0
        assert health["caches"]["plan-disk"]["misses"] == 1.0
        leaders = health["coalesced"]["leaders"]
        followers = health["coalesced"]["followers"]
        assert leaders + followers == n
        assert memory["hits"] == leaders - 1
        # one entry materialized on disk
        plans = harness.tmp_path / "cache" / "plans"
        assert len(list(plans.glob("*.json"))) == 1

        # the roles the clients saw agree with the server's counters
        coalesced = [d["coalesced"] for d in docs]
        assert coalesced.count(True) == followers

    def test_coalesced_runs_share_compile_not_execution(self, harness):
        """Two concurrent /run of one kernel on different grids share
        the compilation key but execute separately."""
        jobs = [{"kernel": "five_point", "bindings": {"N": 12},
                 "level": "O2", "machine": {"grid": grid}}
                for grid in ([2, 2], [4, 1])]
        with ThreadPoolExecutor(max_workers=2) as pool:
            docs = list(pool.map(
                lambda j: harness.json("POST", "/run", j), jobs))
        assert docs[0]["key"] == docs[1]["key"]
        assert docs[0]["summary"]["messages"] != \
            docs[1]["summary"]["messages"]


class TestRunFidelity:
    @pytest.mark.parametrize("backend", ["perpe", "vectorized",
                                         "compiled"])
    def test_run_bitwise_identical_to_direct_run_kernel(
            self, harness, backend):
        job = {"kernel": "jacobi", "bindings": {"N": 16},
               "level": "O4", "backend": backend, "iterations": 2,
               "seed": 3}
        if backend == "compiled":
            job["jit"] = "python"  # numba-less environments
        doc = harness.json("POST", "/run", job)

        def direct():
            return run_kernel("jacobi", bindings={"N": 16},
                              level="O4", backend=backend,
                              iterations=2, seed=3)
        if backend == "compiled":
            from repro.codegen import codegen_options
            with codegen_options(jit="python"):
                result = direct()
        else:
            result = direct()

        assert set(doc["arrays"]) == set(result.arrays)
        for name, arr in result.arrays.items():
            expected = hashlib.sha256(arr.tobytes()).hexdigest()
            assert doc["arrays"][name]["sha256"] == expected, name
        for name, value in result.scalars.items():
            assert doc["scalars"][name] == float(value)
        assert doc["summary"] == result.summary()

    def test_full_arrays_round_trip(self, harness):
        import base64

        doc = harness.json(
            "POST", "/run", {**FIVE_O2, "arrays": "full", "seed": 5})
        direct = run_kernel("five_point", bindings={"N": 12},
                            level="O2", seed=5)
        for name, arr in direct.arrays.items():
            entry = doc["arrays"][name]
            decoded = np.frombuffer(
                base64.b64decode(entry["data"]),
                dtype=entry["dtype"]).reshape(entry["shape"])
            np.testing.assert_array_equal(decoded, arr)

    def test_run_embeds_metrics_and_profile_documents(self, harness):
        from repro.obs import metrics_from_json, profile_from_json

        doc = harness.json("POST", "/run",
                           {**FIVE_O2, "profile": True})
        # both embedded documents round-trip through their own readers
        registry = metrics_from_json(json.dumps(doc["metrics"]))
        names = {m.name for m in registry.metrics()}
        assert "repro_nest_wall_seconds" in names
        profile = profile_from_json(json.dumps(doc["profile"]))
        assert profile.kernel == "five_point"


class TestAdmissionControl:
    def test_saturated_pool_returns_429_with_retry_after(self, tmp_path):
        harness = ServiceHarness(
            tmp_path, pool=WorkerPool(workers=1, max_pending=1))
        try:
            # hold the single admission slot with a gated job so the
            # saturation window is under test control, not timing
            gate = threading.Event()
            occupied = asyncio.run_coroutine_threadsafe(
                harness.service.state.pool.submit(gate.wait),
                harness.loop)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                health = harness.json("GET", "/healthz")
                if health["pending_jobs"] >= 1:
                    break
                time.sleep(0.01)
            assert health["pending_jobs"] >= 1
            try:
                status, headers, payload = harness.request(
                    "POST", "/compile",
                    {"kernel": "five_point", "bindings": {"N": 8}})
                assert status == 429
                assert int(headers["Retry-After"]) >= 1
                assert b"saturated" in payload
            finally:
                gate.set()
            occupied.result(timeout=30)
            # reads stay available under load shedding, the rejection
            # is visible in the service metrics, and capacity frees up
            _, _, scrape = harness.request("GET", "/metrics")
            assert b'repro_service_rejected_total{route="/compile"} 1' \
                in scrape
            doc = harness.json("POST", "/compile",
                               {"kernel": "five_point",
                                "bindings": {"N": 8}})
            assert doc["kind"] == "compile"
        finally:
            harness.close()


class TestObservability:
    def test_metrics_parse_under_ci_line_grammar(self, harness):
        harness.json("POST", "/run", dict(FIVE_O2))
        harness.json("POST", "/compile", dict(FIVE_O2))
        status, headers, payload = harness.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        lines = payload.decode().splitlines()
        bad = [l for l in lines if l and not PROM_LINE.match(l)]
        assert not bad, bad[:5]
        text = payload.decode()
        assert 'repro_service_requests_total{method="POST",' \
            in text
        assert "repro_service_job_seconds_bucket" in text
        assert 'repro_service_cache_events{cache="plan-memory"' \
            in text

    def test_healthz_snapshot(self, harness):
        doc = harness.json("GET", "/healthz")
        assert doc["status"] == "ok"
        assert doc["pending_jobs"] == 0
        assert doc["max_pending"] >= 1
        assert set(doc["coalesced"]) == {"leaders", "followers"}
        # reported even while the ledger is empty (RunLedger is falsy
        # at len 0 — regression: `if state.ledger` hid it until the
        # first record landed)
        assert doc["ledger"] == str(harness.tmp_path / "ledger.jsonl")

    def test_every_job_lands_in_the_ledger(self, harness):
        harness.json("POST", "/compile", dict(FIVE_O2))
        harness.json("POST", "/run",
                     {**FIVE_O2, "backend": "vectorized"})
        ledger = RunLedger(harness.tmp_path / "ledger.jsonl")
        records = ledger.records()
        assert len(records) == 2
        compile_rec, run_rec = records
        assert compile_rec["fingerprint"] == COMPILE_FINGERPRINT
        assert compile_rec["extra"]["route"] == "/compile"
        assert run_rec["backend"] == "vectorized"
        assert run_rec["extra"]["kernel"] == "five_point"
        assert run_rec["plan_key"] == compile_rec["plan_key"]
        assert run_rec["metrics"]["metrics"]  # embedded metrics doc
        assert run_rec["fingerprint"].startswith("grid=")


class TestCacheEndpoints:
    def test_warm_then_evict_key_then_all(self, harness):
        warmed = harness.json("POST", "/cache/warm", {"jobs": [
            dict(FIVE_O2),
            {"kernel": "jacobi", "bindings": {"N": 12}},
        ]})
        keys = [w["key"] for w in warmed["warmed"]]
        assert len(set(keys)) == 2
        plans = harness.tmp_path / "cache" / "plans"
        assert len(list(plans.glob("*.json"))) == 2

        # a warmed plan compiles as a pure cache hit
        before = harness.json("GET", "/healthz")["caches"]
        harness.json("POST", "/compile", dict(FIVE_O2))
        after = harness.json("GET", "/healthz")["caches"]
        assert after["plan-memory"]["hits"] == \
            before["plan-memory"]["hits"] + 1
        assert after["plan-memory"]["misses"] == \
            before["plan-memory"]["misses"]

        dropped = harness.json("POST", "/cache/evict",
                               {"key": keys[0]})
        assert dropped["dropped"]["plans"] == 2  # memory + disk
        assert len(list(plans.glob("*.json"))) == 1
        harness.json("GET", f"/plan/{keys[0]}", expect=404)

        dropped = harness.json("POST", "/cache/evict", {"all": True})
        assert dropped["dropped"]["plans"] == 2
        assert not list(plans.glob("*.json"))
        harness.json("GET", f"/plan/{keys[1]}", expect=404)

    def test_single_job_warm_body(self, harness):
        warmed = harness.json("POST", "/cache/warm", dict(FIVE_O2))
        assert len(warmed["warmed"]) == 1

    def test_bad_evict_body_rejected(self, harness):
        doc = harness.json("POST", "/cache/evict", {}, expect=400)
        assert "evict" in doc["error"]
        doc = harness.json("POST", "/cache/evict",
                           {"key": "k", "all": True}, expect=400)
        assert "evict" in doc["error"]


class TestHttpFraming:
    def test_unknown_route_404(self, harness):
        doc = harness.json("GET", "/nope", expect=404)
        assert "/compile" in doc["error"]

    def test_wrong_method_405(self, harness):
        doc = harness.json("GET", "/compile", expect=405)
        assert doc["kind"] == "error"
        doc = harness.json("POST", "/metrics", {}, expect=405)
        assert doc["kind"] == "error"

    def test_malformed_request_line_400(self, harness):
        import socket

        with socket.create_connection(
                ("127.0.0.1", harness.port), timeout=10) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            data = sock.recv(4096)
        assert data.startswith(b"HTTP/1.1 400 ")

    def test_responses_close_the_connection(self, harness):
        status, headers, _ = harness.request("GET", "/healthz")
        assert headers["Connection"] == "close"
