"""Job-document parsing: strict validation at the service boundary.

Every malformed document must become a :class:`JobError` naming the
offending field (the app maps those to 400s), never an exception from
deeper layers; registry-kernel jobs must resolve defaults exactly as
``run_kernel`` does so service runs stay bitwise-comparable."""

import pytest

from repro.kernels import KERNELS
from repro.service import (
    JobError, parse_compile_job, parse_run_job,
)

FIVE = {"kernel": "five_point", "bindings": {"N": 12}}


class TestCompileJob:
    def test_kernel_resolves_registry_defaults(self):
        job = parse_compile_job({"kernel": "jacobi"})
        spec = KERNELS["jacobi"]
        assert job.source == spec.source
        assert job.bindings == spec.default_bindings
        assert job.outputs == set(spec.outputs)
        assert job.kernel == "jacobi"

    def test_explicit_bindings_override_defaults(self):
        job = parse_compile_job({"kernel": "five_point",
                                 "bindings": {"N": 12}})
        assert job.bindings["N"] == 12

    def test_raw_source_passes_through(self):
        src = KERNELS["five_point"].source
        job = parse_compile_job({"source": src, "bindings": {"N": 8},
                                 "outputs": ["DST"]})
        assert job.source == src
        assert job.outputs == {"DST"}
        assert job.kernel is None

    def test_kernel_and_source_together_rejected(self):
        with pytest.raises(JobError, match="exactly one"):
            parse_compile_job({"kernel": "jacobi", "source": "x"})

    def test_neither_kernel_nor_source_rejected(self):
        with pytest.raises(JobError, match="exactly one"):
            parse_compile_job({"bindings": {"N": 4}})

    def test_unknown_kernel_rejected(self):
        with pytest.raises(JobError, match="no_such"):
            parse_compile_job({"kernel": "no_such"})

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(JobError, match="grid"):
            parse_compile_job({**FIVE, "grid": [2, 2]})

    def test_non_integer_binding_rejected(self):
        with pytest.raises(JobError, match="bindings"):
            parse_compile_job({"kernel": "jacobi",
                               "bindings": {"N": 12.5}})
        with pytest.raises(JobError, match="bindings"):
            parse_compile_job({"kernel": "jacobi",
                               "bindings": {"N": True}})

    def test_non_object_rejected(self):
        with pytest.raises(JobError, match="object"):
            parse_compile_job(["not", "a", "job"])


class TestRunJob:
    def test_defaults(self):
        job = parse_run_job(dict(FIVE))
        assert job.backend == "perpe"
        assert job.iterations == 1
        assert job.seed == 0
        assert job.arrays == "digest"
        assert job.machine.grid == (2, 2)
        assert job.machine.preset == "sp2"

    def test_kernel_default_scalars_merge_under_explicit(self):
        spec = KERNELS["cg"]
        assert spec.default_scalars  # the premise of the merge test
        some_key = next(iter(spec.default_scalars))
        job = parse_run_job({"kernel": "cg",
                             "scalars": {some_key: 99.0}})
        assert job.scalars[some_key] == 99.0
        for name, value in spec.default_scalars.items():
            if name != some_key:
                assert job.scalars[name] == value

    def test_machine_spec_builds(self):
        job = parse_run_job({**FIVE,
                             "machine": {"grid": [4, 1],
                                         "preset": "ethernet",
                                         "memory_mb": 8}})
        machine = job.machine.build()
        assert tuple(machine.grid) == (4, 1)
        assert machine.memory_per_pe == 8 * 1024 * 1024

    def test_bad_backend_rejected(self):
        with pytest.raises(JobError, match="backend"):
            parse_run_job({**FIVE, "backend": "cuda"})

    def test_bad_arrays_mode_rejected(self):
        with pytest.raises(JobError, match="arrays"):
            parse_run_job({**FIVE, "arrays": "everything"})

    def test_bad_grid_rejected(self):
        with pytest.raises(JobError, match="grid"):
            parse_run_job({**FIVE, "machine": {"grid": [0, 2]}})

    def test_bad_iterations_rejected(self):
        with pytest.raises(JobError, match="iterations"):
            parse_run_job({**FIVE, "iterations": 0})

    def test_bad_jit_rejected(self):
        with pytest.raises(JobError, match="jit"):
            parse_run_job({**FIVE, "jit": "llvm"})

    def test_non_numeric_scalar_rejected(self):
        with pytest.raises(JobError, match="scalars"):
            parse_run_job({**FIVE, "scalars": {"eps": "tiny"}})
