"""Worker-pool unit tests: bounded concurrency, admission control, and
the Retry-After estimate."""

import asyncio
import threading

import pytest

from repro.service import PoolBusy, WorkerPool


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_rejects_beyond_max_pending(self):
        async def scenario():
            pool = WorkerPool(workers=1, max_pending=2)
            gate = threading.Event()
            admitted = [pool.submit(gate.wait) for _ in range(2)]
            tasks = [asyncio.ensure_future(t) for t in admitted]
            await asyncio.sleep(0.05)
            assert pool.pending == 2
            with pytest.raises(PoolBusy) as exc:
                await pool.submit(lambda: None)
            assert exc.value.retry_after >= 1
            gate.set()
            await asyncio.gather(*tasks)
            assert pool.pending == 0
            # capacity freed: the next job is admitted again
            assert await pool.submit(lambda: 42) == 42
            pool.shutdown()

        run(scenario())

    def test_results_and_errors_round_trip(self):
        async def scenario():
            pool = WorkerPool(workers=2, max_pending=4)
            assert await pool.submit(lambda: 7) == 7
            with pytest.raises(ZeroDivisionError):
                await pool.submit(lambda: 1 // 0)
            pool.shutdown()

        run(scenario())

    def test_retry_after_tracks_backlog(self):
        pool = WorkerPool(workers=1, max_pending=8)
        pool._ewma_seconds = 2.0
        pool._pending = 1  # nothing queued beyond the workers
        shallow = pool.retry_after()
        pool._pending = 7  # six queued behind the one running
        deep = pool.retry_after()
        assert 1 <= shallow < deep
        pool.shutdown()

    def test_validates_configuration(self):
        with pytest.raises(ValueError, match="worker"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="max_pending"):
            WorkerPool(workers=1, max_pending=0)
