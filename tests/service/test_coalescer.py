"""Coalescer unit tests: N identical concurrent submits run the
factory once, all N get the same object, and failures propagate to the
whole cohort without poisoning the key."""

import asyncio

import pytest

from repro.service import Coalescer


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_identical_keys_run_factory_once(self):
        async def scenario():
            co = Coalescer()
            calls = 0
            release = asyncio.Event()

            async def factory():
                nonlocal calls
                calls += 1
                await release.wait()
                return object()

            tasks = [asyncio.ensure_future(co.run("k", factory))
                     for _ in range(32)]
            await asyncio.sleep(0)  # let every task reach the map
            release.set()
            results = await asyncio.gather(*tasks)
            return co, calls, results

        co, calls, results = run(scenario())
        assert calls == 1
        values = [value for value, _ in results]
        assert all(v is values[0] for v in values)
        coalesced = [flag for _, flag in results]
        assert coalesced.count(False) == 1  # exactly one leader
        assert coalesced.count(True) == 31
        assert co.leaders == 1 and co.followers == 31
        assert len(co) == 0  # inflight map drained

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            co = Coalescer()
            calls = []

            async def factory(key):
                calls.append(key)
                return key.upper()

            results = await asyncio.gather(
                co.run("a", lambda: factory("a")),
                co.run("b", lambda: factory("b")))
            return co, calls, results

        co, calls, results = run(scenario())
        assert sorted(calls) == ["a", "b"]
        assert results == [("A", False), ("B", False)]
        assert co.leaders == 2 and co.followers == 0

    def test_sequential_requests_each_lead(self):
        async def scenario():
            co = Coalescer()

            async def factory():
                return 1

            first = await co.run("k", factory)
            second = await co.run("k", factory)
            return co, first, second

        co, first, second = run(scenario())
        # no overlap -> no coalescing; caching is the cache's job
        assert first == (1, False) and second == (1, False)
        assert co.leaders == 2

    def test_leader_failure_reaches_every_follower(self):
        async def scenario():
            co = Coalescer()
            release = asyncio.Event()

            async def factory():
                await release.wait()
                raise RuntimeError("compile exploded")

            tasks = [asyncio.ensure_future(co.run("k", factory))
                     for _ in range(5)]
            await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(*tasks,
                                           return_exceptions=True)
            return co, results

        co, results = run(scenario())
        assert len(results) == 5
        assert all(isinstance(r, RuntimeError) for r in results)
        # same exception object for the whole cohort
        assert len({id(r) for r in results}) == 1
        assert len(co) == 0

    def test_failed_key_retries_fresh(self):
        async def scenario():
            co = Coalescer()
            attempts = 0

            async def factory():
                nonlocal attempts
                attempts += 1
                if attempts == 1:
                    raise RuntimeError("transient")
                return "ok"

            with pytest.raises(RuntimeError):
                await co.run("k", factory)
            value, coalesced = await co.run("k", factory)
            return attempts, value, coalesced

        attempts, value, coalesced = run(scenario())
        assert attempts == 2
        assert value == "ok" and coalesced is False
