"""IR node tests: printing, traversal, section algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SemanticError
from repro.ir.linexpr import LinExpr
from repro.ir.nodes import (
    ArrayRef, BinOp, Compare, Const, CShift, EOShift, Intrinsic,
    OffsetRef, OverlapShift, Reduction, ScalarRef, Triplet, UnaryOp,
    array_names, section_offsets,
)
from repro.ir.rsd import RSD, RSDim


def trip(lo, hi):
    return Triplet(LinExpr.of(lo), LinExpr.of(hi))


class TestPrinting:
    def test_binop_precedence_parens(self):
        e = BinOp("*", BinOp("+", Const(1), Const(2)), Const(3))
        assert str(e) == "(1 + 2) * 3"

    def test_no_redundant_parens(self):
        e = BinOp("+", BinOp("*", Const(1), Const(2)), Const(3))
        assert str(e) == "1 * 2 + 3"

    def test_right_associative_subtraction(self):
        e = BinOp("-", Const(1), BinOp("-", Const(2), Const(3)))
        assert str(e) == "1 - (2 - 3)"

    def test_offset_ref_paper_notation(self):
        assert str(OffsetRef("U", (1, -1))) == "U<+1,-1>"
        assert str(OffsetRef("U", (0, 0))) == "U<0,0>"

    def test_offset_ref_eoshift_notation(self):
        assert str(OffsetRef("U", (1, 0), 2.5)) == "U<+1,0;EOS=2.5>"

    def test_cshift_printing(self):
        e = CShift(ArrayRef("SRC"), -1, 2)
        assert str(e) == "CSHIFT(SRC,SHIFT=-1,DIM=2)"

    def test_overlap_shift_with_rsd_and_boundary(self):
        s = OverlapShift("U", 1, 2, rsd=RSD((RSDim(1, 1), None)),
                         boundary=0.0)
        assert str(s) == ("CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=2,"
                          "[0:n1+1,*],BOUNDARY=0)")

    def test_sectioned_ref(self):
        r = ArrayRef("A", (trip(2, LinExpr.of("N") - 1), trip(1, "N")))
        assert str(r) == "A(2:N-1,1:N)"

    def test_reduction(self):
        assert str(Reduction("SUM", ArrayRef("A"))) == "SUM(A)"


class TestValidation:
    def test_bad_binop(self):
        with pytest.raises(SemanticError):
            BinOp("%", Const(1), Const(2))

    def test_bad_compare(self):
        with pytest.raises(SemanticError):
            Compare("!=", Const(1), Const(2))

    def test_bad_dim(self):
        with pytest.raises(SemanticError):
            CShift(ArrayRef("A"), 1, 0)

    def test_bad_intrinsic(self):
        with pytest.raises(SemanticError):
            Intrinsic("SIN", (Const(1),))

    def test_bad_reduction(self):
        with pytest.raises(SemanticError):
            Reduction("PRODUCT", ArrayRef("A"))

    def test_nonunit_stride_section(self):
        with pytest.raises(SemanticError):
            Triplet(LinExpr(1), LinExpr(10), step=2)

    def test_zero_overlap_shift(self):
        with pytest.raises(SemanticError):
            OverlapShift("U", 0, 1)


class TestTraversal:
    def test_walk_preorder(self):
        e = BinOp("+", ScalarRef("C"), CShift(ArrayRef("A"), 1, 1))
        kinds = [type(n).__name__ for n in e.walk()]
        assert kinds == ["BinOp", "ScalarRef", "CShift", "ArrayRef"]

    def test_array_names(self):
        e = BinOp("*", ArrayRef("A"),
                  Intrinsic("ABS", (OffsetRef("B", (1,)),)))
        assert array_names(e) == {"A", "B"}

    def test_array_names_through_reduction(self):
        e = Reduction("SUM", BinOp("*", ArrayRef("R"), ArrayRef("R")))
        assert array_names(e) == {"R"}


class TestSectionOffsets:
    def test_paper_example(self):
        base = (trip(2, LinExpr.of("N") - 1),
                trip(2, LinExpr.of("N") - 1))
        ref = (trip(1, LinExpr.of("N") - 2),
               trip(2, LinExpr.of("N") - 1))
        assert section_offsets(ref, base) == (-1, 0)

    def test_mismatched_width(self):
        base = (trip(2, 9),)
        ref = (trip(1, 9),)  # widths differ: 8 vs 9
        assert section_offsets(ref, base) is None

    def test_symbolic_mismatch(self):
        base = (trip(1, "N"),)
        ref = (trip(1, "M"),)
        assert section_offsets(ref, base) is None

    def test_rank_mismatch(self):
        assert section_offsets((trip(1, 4),),
                               (trip(1, 4), trip(1, 4))) is None

    @given(base_lo=st.integers(1, 10), width=st.integers(0, 10),
           delta=st.integers(-5, 5))
    def test_constant_shift_detected(self, base_lo, width, delta):
        base = (trip(base_lo, base_lo + width),)
        ref = (trip(base_lo + delta, base_lo + width + delta),)
        assert section_offsets(ref, base) == (delta,)

    def test_shifted_triplet_helper(self):
        t = trip(2, 9).shifted(-1)
        assert str(t) == "1:8"
