"""Data dependence graph tests."""

from repro import kernels
from repro.frontend import parse_program
from repro.ir.dependence import DepKind, build_ddg
from repro.passes.normalize import NormalizePass
from repro.passes.offset_arrays import OffsetArrayPass


def ddg_of(src, transform=False, bindings=None):
    p = parse_program(src, bindings=bindings or {"N": 16})
    if transform:
        NormalizePass().run(p)
        OffsetArrayPass(outputs=None).run(p)
    return list(p.body), build_ddg(list(p.body), p), p


def edges_between(edges, i, j):
    return [e for e in edges if (e.src, e.dst) == (i, j)]


class TestBasicDeps:
    def test_true_dependence(self):
        stmts, edges, _ = ddg_of("""
        REAL A(8,8), B(8,8)
        A = B + 1
        B = A + 1
        """)
        kinds = {e.kind for e in edges_between(edges, 0, 1)}
        assert DepKind.TRUE in kinds   # A written then read
        assert DepKind.ANTI in kinds   # B read then written

    def test_output_dependence(self):
        _, edges, _ = ddg_of("""
        REAL A(8,8)
        A = 1
        A = 2
        """)
        assert any(e.kind is DepKind.OUTPUT for e in edges)

    def test_independent_statements(self):
        _, edges, _ = ddg_of("""
        REAL A(8,8), B(8,8), C(8,8), D(8,8)
        A = B + 1
        C = D + 1
        """)
        assert edges == []

    def test_scalar_dependence(self):
        _, edges, _ = ddg_of("""
        REAL A(8,8)
        X = 2.0
        A = A * X
        """)
        assert any(e.resource == "$X" and e.kind is DepKind.TRUE
                   for e in edges)


class TestHaloModel:
    def test_overlap_shift_feeds_offset_use(self):
        stmts, edges, _ = ddg_of(kernels.PURDUE_PROBLEM9, transform=True)
        # every compute reading U<..> depends on the shifts that fill
        # the referenced halo regions
        halo_edges = [e for e in edges if ".halo[" in e.resource
                      and e.kind is DepKind.TRUE]
        assert halo_edges

    def test_no_anti_into_overlap_shift(self):
        _, edges, _ = ddg_of(kernels.PURDUE_PROBLEM9, transform=True)
        from repro.ir.nodes import OverlapShift
        # idempotent-halo rule: no anti deps terminate at a shift
        assert not any(e.kind is DepKind.ANTI and ".halo[" in e.resource
                       for e in edges)

    def test_redefinition_invalidates_halo(self):
        _, edges, p = ddg_of("""
        REAL A(16,16), B(16,16), C(16,16)
        B = CSHIFT(A,SHIFT=1,DIM=1)
        A = A + 1
        C = CSHIFT(A,SHIFT=1,DIM=1)
        """, transform=True)
        # the def of A (statement writing A) must be ordered before the
        # second shift via a halo output dependence
        stmts = list(p.body)
        from repro.ir.nodes import ArrayAssign, OverlapShift
        def_idx = next(i for i, s in enumerate(stmts)
                       if isinstance(s, ArrayAssign) and s.lhs.name == "A")
        shift_idx = [i for i, s in enumerate(stmts)
                     if isinstance(s, OverlapShift)]
        later_shift = [i for i in shift_idx if i > def_idx]
        assert later_shift
        assert any(e.src == def_idx and e.dst == later_shift[0]
                   and ".halo[" in e.resource
                   for e in edges)


class TestFusionPreventing:
    def test_aligned_dep_fusible(self):
        _, edges, _ = ddg_of("""
        REAL A(8,8), B(8,8)
        A = B + 1
        A = A + 2
        """)
        assert all(not e.fusion_preventing for e in edges)

    def test_offset_true_dep_prevents_fusion(self):
        _, edges, _ = ddg_of("""
        REAL A(16,16), B(16,16), C(16,16)
        B = A + 1
        C = CSHIFT(B,SHIFT=1,DIM=1)
        """, transform=True)
        bad = [e for e in edges if e.fusion_preventing]
        # the materialised copy C = B<+1,0> reads B at a nonzero offset
        assert bad

    def test_sectioned_offset_prevents_fusion(self):
        _, edges, _ = ddg_of("""
        REAL A(16,16), B(16,16)
        A(2:15,2:15) = 1
        B(2:15,2:15) = A(1:14,2:15)
        """)
        assert any(e.fusion_preventing for e in edges)
