"""Program container, validation, dead-array pruning, CFG tests."""

import pytest

from repro.errors import PipelineError
from repro.frontend import parse_program
from repro.ir.nodes import (
    ArrayAssign, ArrayRef, Const, DoLoop, If, OffsetRef,
)
from repro.ir.program import build_cfg, single_block


class TestValidation:
    def test_valid_program(self):
        p = parse_program("REAL A(8,8), B(8,8)\nA = B + 1")
        p.validate()

    def test_offset_rank_mismatch_caught(self):
        p = parse_program("REAL A(8,8), B(8,8)\nA = B")
        p.body[0].rhs = OffsetRef("B", (1,))  # wrong rank
        with pytest.raises(PipelineError):
            p.validate()

    def test_section_rank_mismatch_caught(self):
        from repro.ir.linexpr import LinExpr
        from repro.ir.nodes import Triplet
        p = parse_program("REAL A(8,8)\nA = 1")
        p.body[0].lhs = ArrayRef(
            "A", (Triplet(LinExpr(1), LinExpr(4)),))
        with pytest.raises(PipelineError):
            p.validate()


class TestDeadArrays:
    def test_prune_unused_temp(self):
        p = parse_program("REAL A(8,8), B(8,8)\nA = B + 1")
        p.symbols.new_temp(p.symbols.array("A"))
        dead = p.prune_dead_arrays()
        assert dead == ["TMP1"]
        assert not p.symbols.is_array("TMP1")

    def test_user_arrays_never_pruned(self):
        p = parse_program("REAL A(8,8), B(8,8), C(8,8)\nA = B + 1")
        assert p.prune_dead_arrays() == []
        assert p.symbols.is_array("C")

    def test_alloc_statements_pruned_with_temp(self):
        from repro.ir.nodes import Allocate, Deallocate
        p = parse_program("REAL A(8,8), B(8,8)\nA = B + 1")
        tmp = p.symbols.new_temp(p.symbols.array("A"))
        p.body.insert(0, Allocate([tmp.name]))
        p.body.append(Deallocate([tmp.name]))
        p.prune_dead_arrays()
        assert not any(isinstance(s, (Allocate, Deallocate))
                       for s in p.body)


class TestCFG:
    def test_straight_line_single_block(self):
        p = parse_program("REAL A(8,8)\nA = 1\nA = A + 1")
        assert single_block(p) is not None
        cfg = build_cfg(p)
        # entry, exit, one real block
        real = [b for b in cfg.blocks if b.statements]
        assert len(real) == 1
        assert len(real[0].statements) == 2

    def test_if_creates_branches(self):
        p = parse_program("""
        REAL A(8,8)
        IF (X < 1) THEN
          A = 1
        ELSE
          A = 2
        ENDIF
        A = A + 1
        """)
        assert single_block(p) is None
        cfg = build_cfg(p)
        entry_succ = cfg.block(cfg.entry).successors
        assert len(entry_succ) == 1
        head = cfg.block(entry_succ[0])
        assert len(head.successors) == 2  # then / else

    def test_loop_has_back_edge(self):
        p = parse_program("""
        REAL A(8,8)
        DO K = 1, 3
          A = A + 1
        ENDDO
        """)
        cfg = build_cfg(p)
        # some block must have a successor with a smaller index (the
        # back edge to the loop head)
        assert any(s < b.index for b in cfg.blocks for s in b.successors)

    def test_leaf_statements_flatten_structure(self):
        p = parse_program("""
        REAL A(8,8)
        DO K = 1, 3
          IF (X < 1) THEN
            A = A + 1
          ENDIF
        ENDDO
        A = 0
        """)
        leaves = p.leaf_statements()
        assert len(leaves) == 2
        assert all(isinstance(s, ArrayAssign) for s in leaves)

    def test_referenced_arrays(self):
        p = parse_program("REAL A(8,8), B(8,8), C(8,8)\nA = B + 1")
        assert p.referenced_arrays() == {"A", "B"}
