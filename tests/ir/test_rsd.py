"""Tests for regular section descriptors (paper section 3.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.rsd import RSD, RSDim


class TestRSDim:
    def test_widen_negative_offset_extends_low(self):
        assert RSDim().widen(-2) == RSDim(2, 0)

    def test_widen_positive_offset_extends_high(self):
        assert RSDim().widen(3) == RSDim(0, 3)

    def test_widen_zero_is_identity(self):
        assert RSDim(1, 2).widen(0) == RSDim(1, 2)

    def test_union_is_pointwise_max(self):
        assert RSDim(1, 0).union(RSDim(0, 2)) == RSDim(1, 2)

    def test_contains(self):
        assert RSDim(2, 2).contains(RSDim(1, 2))
        assert not RSDim(0, 2).contains(RSDim(1, 0))

    def test_negative_extension_rejected(self):
        with pytest.raises(ValueError):
            RSDim(-1, 0)


class TestRSD:
    def test_trivial(self):
        r = RSD.trivial(2, shift_dim=1)
        assert r.is_trivial and r.shift_dim == 1

    def test_from_offsets_nine_point_corner(self):
        # the Figure 15 case: dim-2 shift of U<+1,0> needs [0:N+1,*]
        r = RSD.from_offsets((1, 0), shift_dim=1)
        assert r.dims[0] == RSDim(0, 1)
        assert r.dims[1] is None

    def test_union_covers_both_corners(self):
        up = RSD.from_offsets((1, 0), shift_dim=1)
        dn = RSD.from_offsets((-1, 0), shift_dim=1)
        u = up.union(dn)
        assert u.dims[0] == RSDim(1, 1)

    def test_format_matches_paper_notation(self):
        up = RSD.from_offsets((1, 0), shift_dim=1)
        dn = RSD.from_offsets((-1, 0), shift_dim=1)
        assert up.union(dn).format(extents=["N", "N"]) == "[0:N+1,*]"

    def test_incompatible_union_rejected(self):
        with pytest.raises(ValueError):
            RSD.trivial(2, 0).union(RSD.trivial(2, 1))

    def test_rsd_without_star_rejected(self):
        with pytest.raises(ValueError):
            _ = RSD((RSDim(), RSDim())).shift_dim


exts = st.integers(min_value=0, max_value=4)


@st.composite
def rsds(draw, rank: int = 3, shift_dim: int = 1):
    dims = tuple(None if k == shift_dim else RSDim(draw(exts), draw(exts))
                 for k in range(rank))
    return RSD(dims)


class TestRSDProperties:
    @given(rsds(), rsds())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rsds(), rsds(), rsds())
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(rsds(), rsds())
    def test_union_upper_bound(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(rsds())
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(rsds(), rsds())
    def test_contains_iff_union_absorbs(self, a, b):
        assert a.contains(b) == (a.union(b) == a)
