"""Pretty-printer tests: structure, indentation, declarations."""

from repro.frontend import parse_program
from repro.ir.printer import format_program, format_stmt


class TestFormatting:
    def test_indented_do(self):
        p = parse_program("""
        REAL A(8,8)
        DO K = 1, 3
          A = A + 1
        ENDDO
        """)
        text = format_program(p)
        assert text == "DO K = 1, 3\n  A = A + 1\nENDDO"

    def test_nested_structure(self):
        p = parse_program("""
        REAL A(8,8)
        DO K = 1, 3
          IF (X < 1) THEN
            A = A + 1
          ELSE
            A = A - 1
          ENDIF
        ENDDO
        """)
        lines = format_program(p).splitlines()
        assert lines[0] == "DO K = 1, 3"
        assert lines[1] == "  IF (X < 1) THEN"
        assert lines[2] == "    A = A + 1"
        assert lines[3] == "  ELSE"
        assert lines[5] == "  ENDIF"

    def test_do_while(self):
        p = parse_program("""
        REAL A(8,8)
        S = 1.0
        DO WHILE (S > 0.5)
          S = S - 0.6
        ENDDO
        """)
        text = format_program(p)
        assert "DO WHILE (S > 0.5)" in text

    def test_declarations_flag(self):
        p = parse_program("REAL A(8,8)\nA = 1", bindings={"M": 3})
        text = format_program(p, declarations=True)
        assert "! A: REAL(8,8) dist(BLOCK,BLOCK)" in text
        assert "! PARAMETER M = 3" in text

    def test_masked_statement(self):
        p = parse_program("REAL A(8,8), U(8,8)\nWHERE (U > 0) A = 1.0")
        text = format_program(p)
        assert "WHERE (MASK1) A = 1" in text

    def test_format_stmt_standalone(self):
        p = parse_program("REAL A(8,8)\nA = 1")
        assert format_stmt(p.body[0]) == ["A = 1"]
        assert format_stmt(p.body[0], indent=2) == ["    A = 1"]


class TestPaperFidelity:
    """The printer must reproduce the paper's exact source notation."""

    def test_figure3_roundtrip(self):
        from repro import kernels
        p = parse_program(kernels.PURDUE_PROBLEM9, bindings={"N": 16})
        text = format_program(p)
        assert "RIP = CSHIFT(U,SHIFT=+1,DIM=1)" in text
        assert "T = U + RIP + RIN" in text
        assert "T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)" in text

    def test_figure1_sections(self):
        from repro import kernels
        p = parse_program(kernels.FIVE_POINT_ARRAY_SYNTAX,
                          bindings={"N": 16})
        text = format_program(p)
        assert "DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1)" in text
