"""Unit and property tests for affine expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SemanticError
from repro.ir.linexpr import LinExpr


class TestBasics:
    def test_constant(self):
        e = LinExpr.of(5)
        assert e.is_constant and e.constant_value() == 5

    def test_symbol(self):
        e = LinExpr.of("N")
        assert not e.is_constant
        assert e.evaluate({"N": 12}) == 12

    def test_arithmetic(self):
        e = LinExpr.of("N") - 1 + LinExpr.of("N") * 2
        assert e.evaluate({"N": 10}) == 29

    def test_subtraction_cancels(self):
        e = LinExpr.of("N") - LinExpr.of("N")
        assert e.is_constant and e.constant_value() == 0

    def test_rsub(self):
        e = 3 - LinExpr.of("N")
        assert e.evaluate({"N": 1}) == 2

    def test_mul_requires_int(self):
        with pytest.raises(TypeError):
            LinExpr.of("N") * 1.5  # type: ignore[operator]

    def test_unbound_symbol_raises(self):
        with pytest.raises(SemanticError):
            LinExpr.of("N").evaluate({})

    def test_nonconstant_value_raises(self):
        with pytest.raises(SemanticError):
            LinExpr.of("N").constant_value()


class TestPrinting:
    def test_plain_symbol(self):
        assert str(LinExpr.of("N")) == "N"

    def test_symbol_minus_one(self):
        assert str(LinExpr.of("N") - 1) == "N-1"

    def test_symbol_plus_const(self):
        assert str(LinExpr.of("N") + 1) == "N+1"

    def test_zero(self):
        assert str(LinExpr(0)) == "0"

    def test_negative_coeff(self):
        assert str(-LinExpr.of("N") + 2) == "-N+2"

    def test_coefficient(self):
        assert str(LinExpr.of("N") * 2) == "2*N"


values = st.integers(min_value=-50, max_value=50)
syms = st.sampled_from(["N", "M", "K"])


@st.composite
def linexprs(draw):
    e = LinExpr(draw(values))
    for _ in range(draw(st.integers(0, 3))):
        e = e + LinExpr.of(draw(syms)) * draw(values)
    return e


class TestProperties:
    @given(linexprs(), linexprs(), st.dictionaries(syms, values, min_size=3))
    def test_addition_homomorphic(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(linexprs(), linexprs(), st.dictionaries(syms, values, min_size=3))
    def test_subtraction_homomorphic(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(linexprs(), values, st.dictionaries(syms, values, min_size=3))
    def test_scaling_homomorphic(self, a, k, env):
        assert (a * k).evaluate(env) == a.evaluate(env) * k

    @given(linexprs())
    def test_self_minus_self_is_zero(self, a):
        assert (a - a).is_constant and (a - a).constant_value() == 0

    @given(linexprs(), st.dictionaries(syms, values, min_size=3))
    def test_negation(self, a, env):
        assert (-a).evaluate(env) == -a.evaluate(env)
