"""CLI tests: python -m repro compile/run/experiments."""

import pytest

from repro import kernels
from repro.__main__ import main


@pytest.fixture
def p9_file(tmp_path):
    path = tmp_path / "p9.f90"
    path.write_text(kernels.PURDUE_PROBLEM9)
    return str(path)


class TestCompile:
    def test_basic(self, p9_file, capsys):
        assert main(["compile", p9_file, "--bind", "N=32",
                     "--output", "T"]) == 0
        out = capsys.readouterr().out
        assert "4 overlap shifts" in out
        assert "1 loop nests" in out

    def test_trace(self, p9_file, capsys):
        main(["compile", p9_file, "--bind", "N=32", "--output", "T",
              "--trace"])
        out = capsys.readouterr().out
        assert "=== after offset-arrays ===" in out
        assert "U<+1,-1>" in out

    def test_plan(self, p9_file, capsys):
        main(["compile", p9_file, "--bind", "N=32", "--output", "T",
              "--plan"])
        out = capsys.readouterr().out
        assert "fused subgrid loop nest" in out
        assert "rsd=[0:n1+1,*]" in out

    def test_level_o0(self, p9_file, capsys):
        main(["compile", p9_file, "--bind", "N=32", "--output", "T",
              "--level", "O0"])
        out = capsys.readouterr().out
        assert "8 full shifts" in out

    def test_missing_binding_errors(self, p9_file, capsys):
        assert main(["compile", p9_file]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_bind_format(self, p9_file):
        with pytest.raises(SystemExit):
            main(["compile", p9_file, "--bind", "N:32"])


class TestErrorPaths:
    def test_compile_missing_file(self, capsys):
        assert main(["compile", "/no/such/file.f90"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_compile_non_integer_binding(self, p9_file):
        with pytest.raises(SystemExit, match="integer"):
            main(["compile", p9_file, "--bind", "N=abc"])

    def test_run_bad_grid_not_numbers(self, p9_file):
        with pytest.raises(SystemExit, match="grid"):
            main(["run", p9_file, "--bind", "N=32", "--output", "T",
                  "--grid", "2xx"])

    def test_run_bad_grid_zero_extent(self, p9_file):
        with pytest.raises(SystemExit, match="positive"):
            main(["run", p9_file, "--bind", "N=32", "--output", "T",
                  "--grid", "0x2"])

    def test_run_missing_binding(self, p9_file, capsys):
        assert main(["run", p9_file, "--output", "T"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_experiments_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "figNaN"])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["decompile", "x.f90"])


class TestTrace:
    def test_named_kernel_writes_jsonl(self, tmp_path, capsys):
        import json
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "purdue9", "--level", "O4",
                     "--bind", "N=32", "-o", str(out)]) == 0
        events = [json.loads(line)
                  for line in out.read_text().splitlines()]
        assert events[0]["type"] == "trace"
        names = [e["name"] for e in events if e["type"] == "span"]
        for expected in ("compile", "pass:normalize",
                         "pass:offset-arrays", "pass:context-partition",
                         "pass:comm-union", "codegen", "execute",
                         "overlap_shift", "loop_nest"):
            assert expected in names, expected
        assert names.count("overlap_shift") == 4

    def test_tree_summary_on_stdout(self, capsys):
        assert main(["trace", "purdue9", "--bind", "N=32"]) == 0
        out = capsys.readouterr().out
        assert "compile" in out
        assert "pass:comm-union" in out
        assert "execute" in out
        assert "totals:" in out

    def test_json_flag_streams_jsonl(self, capsys):
        import json
        assert main(["trace", "purdue9", "--bind", "N=32",
                     "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_default_bindings_for_named_kernel(self, capsys):
        assert main(["trace", "purdue9"]) == 0  # N defaults to 64

    def test_source_file_argument(self, p9_file, capsys):
        assert main(["trace", p9_file, "--bind", "N=32",
                     "--output", "T"]) == 0
        assert "pass:comm-union" in capsys.readouterr().out

    def test_unknown_kernel_errors(self, capsys):
        assert main(["trace", "purdue99"]) == 1
        err = capsys.readouterr().err
        assert "unknown kernel" in err
        assert "purdue9" in err  # lists the valid names

    def test_level_o0_traces_full_shifts(self, capsys):
        assert main(["trace", "purdue9", "--bind", "N=32",
                     "--level", "O0"]) == 0
        out = capsys.readouterr().out
        assert "full_cshift" in out
        assert "pass:offset-arrays" not in out

    def test_bad_grid_rejected(self):
        with pytest.raises(SystemExit, match="grid"):
            main(["trace", "purdue9", "--grid", "fast"])

    def test_backend_vectorized(self, capsys):
        assert main(["trace", "purdue9", "--bind", "N=32",
                     "--backend", "vectorized"]) == 0
        out = capsys.readouterr().out
        assert "execute" in out
        assert "backend=vectorized" in out

    def test_backends_charge_identical_totals(self, capsys):
        def totals(backend: str) -> str:
            assert main(["trace", "purdue9", "--bind", "N=32",
                         "--backend", backend]) == 0
            out = capsys.readouterr().out
            return out[out.index("totals:"):]

        assert totals("perpe") == totals("vectorized")

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["trace", "purdue9", "--backend", "mpi"])
        assert exc_info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestProfile:
    def test_text_report(self, capsys):
        assert main(["profile", "nine_point", "--bind", "N=16"]) == 0
        out = capsys.readouterr().out
        assert "communication profile" in out
        assert "halo messages" in out
        assert "rsd messages" in out
        assert "cost-model validation" in out

    def test_opt_alias_selects_level(self, capsys):
        assert main(["profile", "nine_point", "--bind", "N=16",
                     "--opt", "O0"]) == 0
        out = capsys.readouterr().out
        assert "@O0" in out
        assert "bufshift messages" in out
        assert "halo messages" not in out

    def test_writes_profile_json(self, tmp_path, capsys):
        from repro.obs import read_profile
        out = tmp_path / "profile.json"
        assert main(["profile", "nine_point", "--bind", "N=16",
                     "--grid", "2x2", "-o", str(out)]) == 0
        profile = read_profile(str(out))
        assert profile.kernel == "nine_point"
        assert profile.level == "O4"
        assert profile.npes == 4

    def test_writes_chrome_trace_with_pe_tracks(self, tmp_path, capsys):
        import json
        out = tmp_path / "chrome.json"
        assert main(["profile", "nine_point", "--bind", "N=16",
                     "--grid", "4x2", "--chrome", str(out)]) == 0
        doc = json.loads(out.read_text())
        exec_tids = {e["tid"] for e in doc["traceEvents"]
                     if e["pid"] == 1}
        assert exec_tids == set(range(8))
        compile_names = {e["name"] for e in doc["traceEvents"]
                         if e["pid"] == 0 and e["ph"] == "X"}
        assert "compile" in compile_names

    def test_json_flag_streams_document(self, capsys):
        import json
        assert main(["profile", "nine_point", "--bind", "N=16",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["type"] == "comm_profile"
        assert doc["profile"]["backend"] == "perpe"

    def test_backends_produce_identical_profiles(self, capsys):
        import json

        def doc(backend: str) -> dict:
            assert main(["profile", "nine_point", "--bind", "N=16",
                         "--backend", backend, "--json"]) == 0
            return json.loads(capsys.readouterr().out)

        a, b = doc("perpe"), doc("vectorized")
        assert a["profile"]["matrix"] == b["profile"]["matrix"]
        assert a["profile"]["timeline"] == b["profile"]["timeline"]

    def test_unknown_kernel_errors(self, capsys):
        assert main(["profile", "no_such_kernel"]) == 1
        assert "unknown kernel" in capsys.readouterr().err

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["profile", "nine_point", "--backend", "serial"])
        assert exc_info.value.code == 2

    def test_source_file_argument(self, p9_file, capsys):
        assert main(["profile", p9_file, "--bind", "N=32",
                     "--output", "T"]) == 0
        assert "communication profile" in capsys.readouterr().out


class TestRun:
    def test_run_prints_checksums(self, p9_file, capsys):
        assert main(["run", p9_file, "--bind", "N=32",
                     "--output", "T"]) == 0
        out = capsys.readouterr().out
        assert "T: shape=(32, 32)" in out
        assert "modelled time:" in out
        assert "messages: 16" in out

    def test_run_deterministic_seed(self, p9_file, capsys):
        main(["run", p9_file, "--bind", "N=32", "--output", "T",
              "--seed", "5"])
        first = capsys.readouterr().out
        main(["run", p9_file, "--bind", "N=32", "--output", "T",
              "--seed", "5"])
        assert capsys.readouterr().out == first

    def test_run_grid_option(self, p9_file, capsys):
        main(["run", p9_file, "--bind", "N=32", "--output", "T",
              "--grid", "4x2"])
        out = capsys.readouterr().out
        assert "messages: 32" in out  # 4 shifts x 8 PEs

    def test_run_oom(self, p9_file, capsys):
        assert main(["run", p9_file, "--bind", "N=2048",
                     "--output", "T", "--level", "O0",
                     "--memory-mb", "1"]) == 1
        assert "exceeds capacity" in capsys.readouterr().err

    def test_run_iters(self, p9_file, capsys):
        main(["run", p9_file, "--bind", "N=32", "--output", "T",
              "--iters", "3"])
        assert "messages: 48" in capsys.readouterr().out


class TestExperiments:
    def test_messages_experiment(self, capsys):
        assert main(["experiments", "messages"]) == 0
        out = capsys.readouterr().out
        assert "Communication unioning" in out

    def test_storage_experiment(self, capsys):
        assert main(["experiments", "storage"]) == 0
        assert "Temporary storage" in capsys.readouterr().out


class TestJsonOutput:
    def test_compile_json(self, p9_file, capsys):
        import json
        assert main(["compile", p9_file, "--bind", "N=32",
                     "--output", "T", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["overlap_shifts"] == 4
        assert data["level"] == "O4"

    def test_run_json(self, p9_file, capsys):
        import json
        assert main(["run", p9_file, "--bind", "N=32",
                     "--output", "T", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["messages"] == 16
        assert "T" in data["checksums"]

    def test_run_json_deterministic(self, p9_file, capsys):
        main(["run", p9_file, "--bind", "N=32", "--output", "T",
              "--json"])
        first = capsys.readouterr().out
        main(["run", p9_file, "--bind", "N=32", "--output", "T",
              "--json"])
        assert capsys.readouterr().out == first


class TestPlanCommand:
    def test_text_default(self, capsys):
        assert main(["plan", "purdue9", "--bind", "N=16"]) == 0
        out = capsys.readouterr().out
        assert "overlap_shift U" in out
        assert "program:" in out

    def test_json_round_trips(self, capsys):
        from repro.plan import plan_from_json, plan_to_json
        assert main(["plan", "purdue9", "--bind", "N=16",
                     "--json"]) == 0
        doc = capsys.readouterr().out
        assert plan_to_json(plan_from_json(doc)) == doc

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "plan.json"
        assert main(["plan", "five_point", "--json", "-o",
                     str(target)]) == 0
        import json
        assert "schema" in json.loads(target.read_text())

    def test_source_file_argument(self, p9_file, capsys):
        assert main(["plan", p9_file, "--bind", "N=16",
                     "--output", "T"]) == 0
        assert "loop nest" in capsys.readouterr().out

    def test_unknown_kernel_errors(self, capsys):
        assert main(["plan", "no_such_kernel"]) == 1
        assert "known kernels" in capsys.readouterr().err

    def test_plan_passes_flag(self, capsys):
        assert main(["plan", "nine_point", "--bind", "N=16",
                     "--level", "O2", "--plan-passes"]) == 0
        base = capsys.readouterr().out
        assert main(["plan", "nine_point", "--bind", "N=16",
                     "--level", "O2"]) == 0
        unopt = capsys.readouterr().out
        assert base.count("overlap_shift") < unopt.count("overlap_shift")


class TestCacheDir:
    def test_persistent_cache_across_invocations(self, tmp_path,
                                                 capsys):
        cache_dir = str(tmp_path / "plans")
        for _ in range(2):
            assert main(["plan", "purdue9", "--bind", "N=16",
                         "--cache-dir", cache_dir]) == 0
            capsys.readouterr()
        import pathlib
        assert len(list(pathlib.Path(cache_dir).glob("*.json"))) == 1

    def test_run_with_cache_dir(self, p9_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "plans")
        args = ["run", p9_file, "--bind", "N=16", "--output", "T",
                "--cache-dir", cache_dir, "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestBackendChoices:
    def test_backend_choices_come_from_registry(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "x.f90", "--backend", "no_such_backend"])
        assert "vectorized" in capsys.readouterr().err


class TestMetricsCommand:
    def test_describe_default(self, capsys):
        assert main(["metrics", "five_point", "--grid", "2x2",
                     "--bind", "N=8"]) == 0
        out = capsys.readouterr().out
        assert "repro_compile_phase_seconds" in out
        assert "repro_exec_events_total" in out
        assert "backend-invariant" in out

    def test_json_round_trips(self, capsys):
        from repro.obs import metrics_from_json, metrics_to_json
        assert main(["metrics", "five_point", "--bind", "N=8",
                     "--json"]) == 0
        text = capsys.readouterr().out
        assert metrics_to_json(metrics_from_json(text)) == text

    def test_prom_exposition(self, capsys):
        assert main(["metrics", "five_point", "--bind", "N=8",
                     "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_exec_runs_total counter" in out
        assert 'repro_exec_runs_total{backend="perpe"} 1\n' in out
        assert "# repro-nondeterministic repro_exec_wall_seconds" in out

    def test_out_suffix_dispatch(self, tmp_path, capsys):
        import json
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        for path in (prom, js):
            assert main(["metrics", "five_point", "--bind", "N=8",
                         "-o", str(path)]) == 0
        assert "wrote metrics to" in capsys.readouterr().err
        assert prom.read_text().startswith("# HELP")
        doc = json.loads(js.read_text())
        assert doc["type"] == "metrics" and doc["version"] == 1

    def test_ledger_append(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger
        path = tmp_path / "ledger.jsonl"
        for _ in range(2):
            assert main(["metrics", "five_point", "--bind", "N=8",
                         "--tile", "16", "--ledger", str(path)]) == 0
        capsys.readouterr()
        ledger = RunLedger(path)
        records = ledger.records()
        assert len(records) == 2 and ledger.corrupt_lines == 0
        rec = records[0]
        assert rec["backend"] == "perpe"
        assert len(rec["plan_key"]) == 64  # sha256 of the plan JSON
        assert rec["plan_key"] == records[1]["plan_key"]
        assert rec["factors"]["level"] == "O4"
        assert rec["factors"]["tile"] == 16
        assert rec["metrics"]["type"] == "metrics"
        assert len(ledger.fingerprints()) == 1

    def test_unknown_kernel_errors(self, capsys):
        assert main(["metrics", "no_such_kernel"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_run_metrics_and_ledger_flags(self, p9_file, tmp_path,
                                          capsys):
        import json
        from repro.obs.ledger import RunLedger
        mpath = tmp_path / "m.json"
        lpath = tmp_path / "l.jsonl"
        assert main(["run", p9_file, "--bind", "N=16", "--output", "T",
                     "--metrics", str(mpath),
                     "--ledger", str(lpath)]) == 0
        capsys.readouterr()
        assert json.loads(mpath.read_text())["type"] == "metrics"
        (rec,) = RunLedger(lpath).records()
        assert rec["metrics"]["type"] == "metrics"

    def test_profile_metrics_flag(self, p9_file, tmp_path, capsys):
        mpath = tmp_path / "m.prom"
        assert main(["profile", p9_file, "--bind", "N=16",
                     "--output", "T", "--metrics", str(mpath)]) == 0
        capsys.readouterr()
        assert "repro_exec_wall_seconds" in mpath.read_text()
