"""Smoke tests: every shipped example must run end to end.

Examples assert their own correctness internally (each checks against a
NumPy reference), so running ``main()`` is a real integration test.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob(
        "*.py"))


def load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys):
    module = load(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "purdue_problem9", "jacobi_poisson",
            "image_blur", "game_of_life", "heat_3d"} <= names
