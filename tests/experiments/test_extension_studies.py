"""Tests for the extension studies (scaling, sensitivity)."""

import pytest

from repro.experiments import scaling, sensitivity


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return scaling.run(n=256, grids=((1, 1), (2, 2), (4, 4)))

    def test_speedup_monotone(self, result):
        speedups = [r.speedup for r in result.rows]
        assert speedups == sorted(speedups)

    def test_efficiency_declines(self, result):
        effs = [r.efficiency for r in result.rows]
        assert effs == sorted(effs, reverse=True)
        assert effs[0] == pytest.approx(1.0)

    def test_comm_fraction_grows(self, result):
        fracs = [r.comm_fraction for r in result.rows]
        assert fracs == sorted(fracs)
        assert fracs[0] == 0.0  # single PE sends nothing

    def test_messages_per_pe_constant(self, result):
        for r in result.rows[1:]:
            assert r.messages == 4 * r.npes

    def test_table_renders(self, result):
        assert scaling.build_table(result).render()


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity.run(n=256)

    def test_all_balances_present(self, result):
        labels = [r.balance for r in result.rows]
        assert len(labels) == len(sensitivity.BALANCES)

    def test_every_balance_still_wins(self, result):
        for r in result.rows:
            assert r.total_speedup > 1.5, r.balance

    def test_shares_sum_to_one(self, result):
        for r in result.rows:
            assert sum(r.step_shares.values()) == pytest.approx(1.0)

    def test_unioning_tracks_latency(self, result):
        by_label = {r.balance: r for r in result.rows}
        slow = by_label["slow network"].step_shares["O3"]
        fast = by_label["fast network"].step_shares["O3"]
        assert slow > fast

    def test_memory_optimizations_dominate_everywhere(self, result):
        for r in result.rows:
            traffic = (r.step_shares["O1"] + r.step_shares["O2"]
                       + r.step_shares["O4"])
            assert traffic > r.step_shares["O3"], r.balance

    def test_table_renders(self, result):
        assert sensitivity.build_table(result).render()

    def test_scaled_model_fields(self):
        m = sensitivity.scaled_model(2.0, 0.5)
        from repro.machine.cost_model import SP2_COST_MODEL
        assert m.alpha == pytest.approx(2 * SP2_COST_MODEL.alpha)
        assert m.mem_load == pytest.approx(0.5 * SP2_COST_MODEL.mem_load)
        assert m.flop == SP2_COST_MODEL.flop  # untouched


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import robustness
        return robustness.run()

    def test_ours_accepts_everything(self, result):
        for name, outcomes in result.rows:
            assert outcomes["ours (O4)"].accepted, name

    def test_pattern_accepts_only_cshift_single(self, result):
        accepted = [name for name, o in result.rows
                    if o["CM-2 pattern"].accepted]
        assert accepted == ["9-pt CSHIFT single-stmt", "27-pt 3-D box"]

    def test_ours_never_slower(self, result):
        for name, outcomes in result.rows:
            ours = outcomes["ours (O4)"]
            naive = outcomes["xlhpf-like"]
            assert ours.modelled_time <= naive.modelled_time * 1.001, name
            assert ours.messages <= naive.messages, name

    def test_ours_zero_temporaries(self, result):
        for name, outcomes in result.rows:
            assert outcomes["ours (O4)"].temp_storage == 0, name

    def test_table_renders(self, result):
        from repro.experiments import robustness
        assert robustness.build_table(result).render()
