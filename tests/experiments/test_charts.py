"""ASCII chart tests."""

import pytest

from repro.experiments.charts import AsciiChart


def chart(**kw):
    c = AsciiChart("test chart", ["10", "20", "30"], **kw)
    return c


class TestAsciiChart:
    def test_render_contains_series(self):
        c = chart()
        c.add("alpha", [1.0, 2.0, 4.0])
        c.add("beta", [2.0, 4.0, 8.0])
        text = c.render()
        assert "test chart" in text
        assert "o=alpha" in text and "x=beta" in text

    def test_monotone_series_rows_ordered(self):
        c = chart(height=10)
        c.add("s", [1.0, 10.0, 100.0])
        rows = c.render().splitlines()
        cols = []
        for r, line in enumerate(rows):
            for x in range(len(line)):
                if line[x] == "o":
                    cols.append((x, r))
        cols.sort()
        # larger values plot on higher rows (smaller row index)
        assert cols[0][1] > cols[1][1] > cols[2][1]

    def test_length_mismatch(self):
        c = chart()
        with pytest.raises(ValueError):
            c.add("bad", [1.0, 2.0])

    def test_nonpositive_rejected(self):
        c = chart()
        with pytest.raises(ValueError):
            c.add("bad", [1.0, 0.0, 2.0])

    def test_empty_chart(self):
        assert "(no data)" in chart().render()

    def test_constant_series(self):
        c = chart()
        c.add("flat", [5.0, 5.0, 5.0])
        assert c.render()

    def test_x_labels_rendered(self):
        c = chart()
        c.add("s", [1.0, 2.0, 3.0])
        assert "10" in c.render().splitlines()[-2]

    def test_fig17_chart_builds(self):
        from repro.experiments import fig17
        result = fig17.run(sizes=(64, 128))
        assert fig17.build_chart(result).render()

    def test_fig18_chart_builds(self):
        from repro.experiments import fig18
        result = fig18.run(sizes=(64, 128))
        assert fig18.build_chart(result).render()
