"""Experiment harness tests: each exhibit's *shape* must match the paper.

These run the real experiment code at reduced sizes and assert the
qualitative claims (who wins, by roughly what factor, where the
crossovers fall) rather than absolute numbers.
"""

import pytest

from repro.experiments import ablations, fig11, fig17, fig18, messages, \
    storage
from repro.experiments.harness import Table

SIZES = (64, 128)


class TestFig17Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17.run(sizes=(128, 256))

    def test_every_step_improves(self, result):
        for i in range(len(result.sizes)):
            times = [result.times[lv][i] for lv, _ in fig17.LEVELS]
            assert times == sorted(times, reverse=True)

    def test_total_speedup_several_fold(self, result):
        # paper: 5.19x; accept the same ballpark
        assert 2.5 <= result.total_speedup() <= 10

    def test_xlhpf_gap_order_of_magnitude(self, result):
        # paper: 52x
        assert result.xlhpf_speedup() >= 15

    def test_unioning_matters_more_when_small(self, result):
        small = result.step_improvement("O3", 0)
        large = result.step_improvement("O3", 1)
        assert small > large

    def test_tables_render(self, result):
        for t in fig17.build_tables(result):
            assert isinstance(t, Table)
            assert t.render()


class TestFig11Shape:
    @pytest.fixture(scope="class")
    def result(self):
        # 1 MB per PE keeps the sweep tiny but preserves the crossover:
        # at N=384 the 14-array single-statement form overflows while
        # the 5-array Problem 9 form still fits
        return fig11.run(sizes=(128, 256, 384, 512),
                         memory_per_pe=1024 * 1024)

    def test_single_statement_ooms_first(self, result):
        single = result.for_spec("9-pt")
        multi = result.for_spec("Problem 9")
        single_oom = [r.n for r in single if r.oom]
        multi_oom = [r.n for r in multi if r.oom]
        assert single_oom, "single-statement form never ran out of memory"
        assert min(single_oom) < (min(multi_oom) if multi_oom
                                  else float("inf"))

    def test_temp_counts_12_vs_3(self, result):
        assert result.for_spec("9-pt")[0].temp_storage_arrays == 12
        assert result.for_spec("Problem 9")[0].temp_storage_arrays == 3

    def test_memory_ratio(self, result):
        single = [r for r in result.for_spec("9-pt") if not r.oom]
        multi = {r.n: r for r in result.for_spec("Problem 9") if not r.oom}
        for r in single:
            if r.n in multi:
                ratio = r.peak_bytes_per_pe / multi[r.n].peak_bytes_per_pe
                assert ratio > 2.0  # paper: ~"factor of four" in temps

    def test_table_renders(self, result):
        assert fig11.build_table(result).render()


class TestFig18Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return fig18.run(sizes=(128, 256))

    def test_array_syntax_tracks_best(self, result):
        for i in range(len(result.sizes)):
            assert 0.95 <= result.array_syntax_gap(i) <= 1.25

    def test_cshift_forms_order_of_magnitude_slower(self, result):
        for label in ("xlhpf: 9-pt CSHIFT single-stmt",
                      "xlhpf: Problem 9 multi-stmt"):
            for i in range(len(result.sizes)):
                assert result.times[label][i] > 5 * result.best_times[i]

    def test_gap_grows_with_size(self, result):
        assert result.array_syntax_gap(-1) >= result.array_syntax_gap(0)

    def test_table_renders(self, result):
        assert fig18.build_table(result).render()


class TestMessagesShape:
    @pytest.fixture(scope="class")
    def result(self):
        return messages.run()

    def test_nine_point_12_to_4(self, result):
        row = result.row("9-pt 2-D CSHIFT")
        assert (row.shifts_before, row.shifts_after) == (12, 4)
        assert row.rsds == 2

    def test_problem9_8_to_4(self, result):
        row = result.row("9-pt 2-D Problem 9")
        assert (row.shifts_before, row.shifts_after) == (8, 4)

    def test_messages_never_increase(self, result):
        for row in result.rows:
            assert row.messages_after <= row.messages_before

    def test_3d_box_54_to_6(self, result):
        row = result.row("27-pt 3-D")
        assert (row.shifts_before, row.shifts_after) == (54, 6)

    def test_star_already_minimal(self, result):
        row = result.row("5-pt 2-D")
        assert row.shifts_before == row.shifts_after == 4
        assert row.rsds == 0

    def test_table_renders(self, result):
        assert messages.build_table(result).render()


class TestStorageShape:
    @pytest.fixture(scope="class")
    def result(self):
        return storage.run(n=64)

    def test_counts(self, result):
        by_key = {(r.spec, r.level): r for r in result.rows}
        assert by_key[("9-pt CSHIFT single-stmt", "naive")].temp_storage == 12
        assert by_key[("Problem 9 multi-stmt", "naive")].temp_storage == 3
        for (spec, level), r in by_key.items():
            if level == "O4":
                assert r.temp_storage == 0

    def test_optimized_uses_less_memory(self, result):
        by_key = {(r.spec, r.level): r for r in result.rows}
        for spec in {r.spec for r in result.rows}:
            assert by_key[(spec, "O4")].peak_mb_per_pe <= \
                by_key[(spec, "naive")].peak_mb_per_pe

    def test_table_renders(self, result):
        assert storage.build_table(result).render()


class TestAblationsShape:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run(n=128)

    def test_fusion_helps(self, result):
        fused = dict(result.fusion)["fused (unlimited)"]
        unfused = dict(result.fusion)["unfused (limit 1)"]
        assert fused < unfused

    def test_unroll_monotone_improvement(self, result):
        times = [t for _, t in result.unroll]
        assert times == sorted(times, reverse=True)

    def test_pooling_counts(self, result):
        d = dict(result.pooling)
        assert d["Problem 9, pooled"] == 3
        assert d["Problem 9, fresh per shift"] == 8

    def test_rsd_saves_messages(self, result):
        msgs = {level: m for level, m, _ in result.corner}
        assert msgs["O3"] < msgs["O2"]

    def test_tables_render(self, result):
        for t in ablations.build_tables(result):
            assert t.render()
